#include "core/cluster.h"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "common/logging.h"
#include "common/thread_annotations.h"
#include "common/timer.h"
#include "common/trace.h"
#include "core/master.h"
#include "core/worker.h"
#include "metrics/cluster_series.h"
#include "metrics/http_endpoint.h"
#include "metrics/registry.h"
#include "metrics/sampler.h"
#include "metrics/trace_stats.h"
#include "net/network.h"
#include "partition/bdg_partitioner.h"
#include "partition/hash_partitioner.h"
#include "storage/spill_file.h"

namespace gminer {

namespace {

bool ProbabilityValid(double p) { return p >= 0.0 && p <= 1.0; }

// Satellite: reject malformed configurations before deploying anything, so a
// bad job submission fails fast with kConfigError instead of wedging threads
// or crashing mid-run.
std::string ValidateRun(const JobConfig& config, const RunOptions& options) {
  if (config.num_workers <= 0) {
    return "num_workers must be positive";
  }
  if (config.threads_per_worker <= 0) {
    return "threads_per_worker must be positive";
  }
  if (config.task_block_capacity == 0 || config.task_buffer_batch == 0 ||
      config.pipeline_depth == 0 || config.rcv_cache_capacity == 0) {
    return "pipeline capacities (task_block_capacity, task_buffer_batch, "
           "pipeline_depth, rcv_cache_capacity) must be positive";
  }
  if (config.progress_interval_ms <= 0 || config.aggregator_interval_ms <= 0) {
    return "progress_interval_ms and aggregator_interval_ms must be positive";
  }
  if (config.pull_timeout_ms <= 0 || config.max_pull_retries < 0) {
    return "pull_timeout_ms must be positive and max_pull_retries non-negative";
  }
  if (config.pull_batch_bytes == 0 || config.pull_flush_us <= 0) {
    return "pull_batch_bytes and pull_flush_us must be positive";
  }
  if (config.pull_queue_bytes < config.pull_batch_bytes) {
    return "pull_queue_bytes must be at least pull_batch_bytes (the queue "
           "bound must admit one full batch)";
  }
  if (config.enable_fault_tolerance) {
    if (config.heartbeat_timeout_ms < 2 * config.progress_interval_ms) {
      return "heartbeat_timeout_ms must be at least twice progress_interval_ms "
             "(one missed report is not a failure)";
    }
    if (config.adoption_retry_ms <= 0) {
      return "adoption_retry_ms must be positive";
    }
    if (config.enable_stealing) {
      return "fault tolerance requires enable_stealing=false: checkpoints are "
             "seed-granular, so migrated tasks would be lost or double-run on "
             "failover";
    }
  }
  if (!ProbabilityValid(options.faults.drop_probability) ||
      !ProbabilityValid(options.faults.duplicate_probability) ||
      !ProbabilityValid(options.faults.delay_probability)) {
    return "fault probabilities must lie in [0, 1]";
  }
  if (options.faults.delay_min_us < 0 ||
      options.faults.delay_max_us < options.faults.delay_min_us) {
    return "fault delay range must satisfy 0 <= delay_min_us <= delay_max_us";
  }
  for (const auto& kill : options.faults.kills) {
    if (kill.worker < 0 || kill.worker >= config.num_workers) {
      return "fault kill names a worker outside [0, num_workers)";
    }
    if (kill.after_messages < 0 && kill.after_seconds < 0.0) {
      return "fault kill needs a trigger (after_messages or after_seconds)";
    }
  }
  if (!options.faults.kills.empty()) {
    if (!config.enable_fault_tolerance) {
      return "fault kills require enable_fault_tolerance=true (nobody would "
             "detect the death)";
    }
    if (options.checkpoint_dir.empty()) {
      return "fault kills require a checkpoint_dir to recover the dead "
             "worker's tasks from";
    }
  }
  if (!options.faults.blackouts.empty() && config.enable_stealing) {
    return "blackouts require enable_stealing=false: a migrated task batch "
           "swallowed by a blackout window is unrecoverable";
  }
  if (options.trace_ring_capacity == 0) {
    return "trace_ring_capacity must be positive";
  }
  if (!options.recover_assignment.empty() &&
      options.recover_assignment.size() != static_cast<size_t>(config.num_workers)) {
    return "recover_assignment size must equal num_workers";
  }
  for (const int source : options.recover_assignment) {
    if (source < 0 || source >= config.num_workers) {
      return "recover_assignment entry outside [0, num_workers)";
    }
  }
  if (!options.checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.checkpoint_dir, ec);
    const std::string probe = options.checkpoint_dir + "/.probe";
    std::ofstream out(probe, std::ios::trunc);
    if (ec || !out.good()) {
      return "checkpoint_dir is not writable: " + options.checkpoint_dir;
    }
    out.close();
    std::filesystem::remove(probe, ec);
  }
  return {};
}

}  // namespace

JobResult Cluster::Run(const Graph& g, JobBase& job, const RunOptions& options) {
  JobResult result;

  if (std::string error = ValidateRun(config_, options); !error.empty()) {
    GM_LOG_ERROR << "invalid job submission: " << error;
    result.status = JobStatus::kConfigError;
    return result;
  }

  // --- Partitioning phase (Fig. 11 reports it separately) ---
  WallTimer partition_timer;
  std::unique_ptr<Partitioner> partitioner;
  if (config_.partition == PartitionStrategy::kBdg) {
    partitioner = std::make_unique<BdgPartitioner>(config_.bdg_num_sources,
                                                   config_.bdg_bfs_depth,
                                                   config_.bdg_max_rounds, config_.seed);
  } else {
    partitioner = std::make_unique<HashPartitioner>();
  }
  auto owner = std::make_shared<const std::vector<WorkerId>>(
      partitioner->Partition(g, config_.num_workers));
  result.partition_seconds = partition_timer.ElapsedSeconds();

  // --- Deployment ---
  ClusterState state;
  state.InitRedirect(config_.num_workers);
  std::vector<std::unique_ptr<WorkerCounters>> counters;
  std::vector<WorkerCounters*> counter_ptrs;
  counters.reserve(static_cast<size_t>(config_.num_workers));
  for (int i = 0; i < config_.num_workers; ++i) {
    counters.push_back(std::make_unique<WorkerCounters>());
    counter_ptrs.push_back(counters.back().get());
  }
  counter_ptrs.push_back(nullptr);  // master endpoint: no accounting
  std::unique_ptr<FaultInjector> injector;
  if (!options.faults.Empty()) {
    injector = std::make_unique<FaultInjector>(options.faults);
  }

  // Tracing: one ring per runtime thread, registered lazily as each thread
  // enters its TraceThreadScope. The tracer must outlive the Network (its
  // delivery thread emits into a ring until ~Network joins it).
  std::unique_ptr<Tracer> tracer;
  if (options.enable_tracing || !options.trace_json_path.empty()) {
#ifdef GMINER_TRACE_DISABLED
    GM_LOG_WARN << "tracing requested but this build has GMINER_TRACE=OFF; "
                   "the trace will be empty";
#endif
    tracer = std::make_unique<Tracer>(options.trace_ring_capacity);
    for (int i = 0; i < config_.num_workers; ++i) {
      tracer->SetProcessName(i, "worker " + std::to_string(i));
    }
    tracer->SetProcessName(config_.num_workers, "master");
    tracer->SetProcessName(config_.num_workers + 1, "network");
  }

  Network net(config_.num_workers + 1, counter_ptrs, config_.net_latency_us > 0,
              config_.net_bandwidth_gbps, config_.net_latency_us, injector.get(),
              tracer.get());

  // Metrics plane (metrics/registry.h): one registry per worker plus one for
  // the master process, aggregated into ClusterMetrics by the master's
  // control loop. GMINER_METRICS=off/on overrides the config default.
  const bool metrics_on = MetricsEnabled(config_.enable_metrics);
  std::vector<std::unique_ptr<MetricsRegistry>> registries;
  std::unique_ptr<MetricsRegistry> master_registry;
  std::unique_ptr<ClusterMetrics> cluster_metrics;
  if (metrics_on) {
    registries.reserve(static_cast<size_t>(config_.num_workers));
    for (int i = 0; i < config_.num_workers; ++i) {
      registries.push_back(std::make_unique<MetricsRegistry>());
    }
    master_registry = std::make_unique<MetricsRegistry>();
    master_registry->LinkGauge("mem.current_bytes",
                               [&state] { return state.memory.current(); });
    master_registry->LinkGauge("mem.peak_bytes", [&state] { return state.memory.peak(); });
    cluster_metrics =
        std::make_unique<ClusterMetrics>(config_.num_workers, config_.metrics_ring_points);
    cluster_metrics->set_master_registry(master_registry.get());
    cluster_metrics->SetPhase("deploying");
  }

  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(static_cast<size_t>(config_.num_workers));
  for (int i = 0; i < config_.num_workers; ++i) {
    workers.push_back(
        std::make_unique<Worker>(i, config_, &net, &state, counters[i].get(), &job));
    workers.back()->set_tracer(tracer.get());
    if (metrics_on) {
      workers.back()->set_registry(registries[static_cast<size_t>(i)].get());
    }
    workers.back()->LoadPartition(g, owner);
    if (!options.checkpoint_dir.empty()) {
      workers.back()->set_checkpoint_path(CheckpointTaskFile(options.checkpoint_dir, i));
    }
  }

  // HTTP endpoint: blocking responder thread on the master, loopback only.
  std::unique_ptr<MetricsHttpServer> http_server;
  if (metrics_on && options.metrics_port >= 0) {
    ClusterMetrics* cm = cluster_metrics.get();
    http_server = std::make_unique<MetricsHttpServer>(
        options.metrics_port, [cm] { return cm->RenderPrometheus(); },
        [cm] { return cm->RenderStatusJson(); });
    if (http_server->Start()) {
      GM_LOG_INFO << "metrics endpoint listening on 127.0.0.1:" << http_server->port();
      if (options.on_metrics_ready) {
        options.on_metrics_ready(http_server->port());
      }
    } else {
      GM_LOG_ERROR << "failed to bind metrics endpoint on port " << options.metrics_port;
      http_server.reset();
    }
  }

  // Kill infrastructure: one idempotent handler shared by the injector's
  // message-count trigger, the timer threads below, and the master's failure
  // detector. Fencing is synchronous (a zombie must not send or receive
  // another message); reaping joins the dead worker's threads and rolls its
  // residual tasks out of the live count, which can block, so it runs async.
  std::vector<std::atomic<bool>> kill_claimed(static_cast<size_t>(config_.num_workers));
  std::atomic<bool> accepting_kills{true};
  Mutex reaper_mutex;
  std::vector<std::thread> reapers;  // lint:allow(naked-thread) reaped below
  const auto kill_worker = [&](WorkerId w) {
    if (w < 0 || w >= config_.num_workers ||
        !accepting_kills.load(std::memory_order_acquire) ||
        kill_claimed[static_cast<size_t>(w)].exchange(true, std::memory_order_acq_rel)) {
      return;
    }
    // Order matters: the failover must be pending before the reaper can pull
    // the dead worker's residual out of live_tasks, or the master could see
    // "no work left" mid-failover and finish the job without the adoption.
    state.pending_failovers.fetch_add(1, std::memory_order_acq_rel);
    state.MarkKilled(w);
    net.MarkDead(w);
    Worker* worker = workers[static_cast<size_t>(w)].get();
    worker->Kill();
    MutexLock lock(reaper_mutex);
    reapers.emplace_back([worker] {
      worker->Join();
      const int64_t residual = worker->ReapAccounting();
      GM_LOG_INFO << "worker " << worker->id() << " reaped, " << residual
                  << " residual task(s) returned to the checkpoint";
    });
  };
  state.kill_worker = kill_worker;
  net.SetKillHandler(kill_worker);

  // Recovery: load checkpointed seed batches instead of generating seeds.
  std::vector<std::vector<std::vector<uint8_t>>> recovered(
      static_cast<size_t>(config_.num_workers));
  const bool recovering = !options.recover_dir.empty();
  if (recovering) {
    for (int i = 0; i < config_.num_workers; ++i) {
      const int source = options.recover_assignment.empty()
                             ? i
                             : options.recover_assignment[static_cast<size_t>(i)];
      const std::string path = CheckpointTaskFile(options.recover_dir, source);
      if (!std::filesystem::exists(path)) {
        // Silently seeding a worker with nothing would drop that partition's
        // results: a missing checkpoint is data loss, not an empty worker.
        GM_LOG_ERROR << "recovery failed: missing checkpoint " << path;
        result.status = JobStatus::kCheckpointError;
        return result;
      }
      // Checkpoint files must survive recovery (a second failure may need
      // them), so read a copy rather than consuming the file.
      const std::string scratch = path + ".recover";
      std::filesystem::copy_file(path, scratch,
                                 std::filesystem::copy_options::overwrite_existing);
      std::string error;
      if (!TryReadSpillBlock(scratch, &recovered[static_cast<size_t>(i)], nullptr,
                             &error)) {
        GM_LOG_ERROR << "recovery failed: " << error;
        std::error_code ec;
        std::filesystem::remove(scratch, ec);
        result.status = JobStatus::kCheckpointError;
        return result;
      }
    }
  }

  const int total_cores = EffectiveCores(config_.num_workers * config_.threads_per_worker);
  const auto snapshot_all = [&counters] {
    CountersSnapshot total;
    for (const auto& c : counters) {
      total += Snapshot(*c);
    }
    return total;
  };
  std::vector<UtilizationSample> fallback_samples;
  std::unique_ptr<UtilizationSampler> sampler;
  if (config_.sample_utilization) {
    // The sampler pushes each sample into the cluster series (when the
    // metrics plane is on) and mirrors the latest values onto the master
    // registry's util.* gauges — no private sample store anymore.
    UtilizationSampler::SampleSink sink;
    if (cluster_metrics != nullptr) {
      ClusterMetrics* cm = cluster_metrics.get();
      sink = [cm](const UtilizationSample& s) { cm->RecordUtilization(s); };
    } else {
      // Metrics plane off but sampling on: keep the series locally so the
      // report's "utilization" array survives. Written only by the sampler
      // thread; read after Stop() has joined it.
      auto* samples = &fallback_samples;
      sink = [samples](const UtilizationSample& s) { samples->push_back(s); };
    }
    sampler = std::make_unique<UtilizationSampler>(
        snapshot_all, std::move(sink), master_registry.get(), total_cores,
        config_.net_bandwidth_gbps, config_.sample_interval_ms);
    sampler->Start();
  }

  // --- Job execution ---
  WallTimer job_timer;
  for (int i = 0; i < config_.num_workers; ++i) {
    workers[static_cast<size_t>(i)]->Start(
        recovering ? &recovered[static_cast<size_t>(i)] : nullptr);
  }

  // Timer threads for wall-clock kill triggers.
  std::atomic<bool> job_done{false};
  std::vector<std::thread> kill_timers;  // lint:allow(naked-thread) joined below
  for (const auto& kill : options.faults.kills) {
    if (kill.after_seconds <= 0.0) {
      continue;
    }
    kill_timers.emplace_back([&, kill] {
      // With after_seeding, the countdown starts once the victim's seed
      // checkpoint is durable — a kill must never race the checkpoint the
      // adopter recovers from.
      if (kill.after_seeding) {
        while (!workers[static_cast<size_t>(kill.worker)]->seeding_done() &&
               !job_done.load(std::memory_order_acquire)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
      const int64_t target_ns =
          MonotonicNanos() + static_cast<int64_t>(kill.after_seconds * 1e9);
      while (MonotonicNanos() < target_ns && !job_done.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (!job_done.load(std::memory_order_acquire)) {
        kill_worker(kill.worker);
      }
    });
  }

  Master master(config_, &net, &state, &job, options.checkpoint_dir,
                /*bounded_shutdown=*/injector != nullptr || config_.enable_fault_tolerance,
                cluster_metrics.get());
  {
    // The master runs on this (caller) thread; give it a trace track.
    TraceThreadScope master_scope(tracer.get(), config_.num_workers, "master");
    result.final_aggregate = master.Run();
  }
  job_done.store(true, std::memory_order_release);
  for (auto& t : kill_timers) {
    t.join();
  }
  // Late kill triggers (a worker's last sends racing shutdown) are ignored
  // from here on; every remaining worker joins normally below.
  accepting_kills.store(false, std::memory_order_release);
  // Closing the network unblocks every listener (they outlive the shutdown
  // handshake so they can re-ack re-sent kShutdowns) and counts any messages
  // still in flight as dropped, keeping the accounting balanced.
  net.Close();
  while (true) {
    std::vector<std::thread> batch;  // lint:allow(naked-thread) joined below
    {
      MutexLock lock(reaper_mutex);
      batch.swap(reapers);
    }
    if (batch.empty()) {
      break;
    }
    for (auto& t : batch) {
      t.join();
    }
  }
  for (int i = 0; i < config_.num_workers; ++i) {
    if (!kill_claimed[static_cast<size_t>(i)].load(std::memory_order_acquire)) {
      workers[static_cast<size_t>(i)]->Join();
    }
  }
  result.elapsed_seconds = job_timer.ElapsedSeconds();

  if (sampler != nullptr) {
    sampler->Stop();
    result.utilization = cluster_metrics != nullptr ? cluster_metrics->UtilizationSeries()
                                                    : std::move(fallback_samples);
  }

  // Final registry state: collect fresh (the last piggybacked snapshot can be
  // up to metrics_interval_ms stale) while the workers — whose queues the
  // gauge callbacks sample — are still alive. The endpoint keeps serving the
  // frozen ring until the server is torn down with the workers below.
  if (metrics_on) {
    result.metrics_enabled = true;
    result.final_metrics.reserve(registries.size());
    for (const auto& registry : registries) {
      result.final_metrics.push_back(registry->Collect());
      result.cluster_metrics.Merge(result.final_metrics.back());
    }
    result.cluster_metrics.Merge(master_registry->Collect());
    if (cluster_metrics != nullptr) {
      cluster_metrics->SetPhase("done");
    }
  }

  // --- Metrics collection ---
  result.status = state.final_status();
  result.peak_memory_bytes = state.memory.peak();
  for (const auto& c : counters) {
    result.per_worker.push_back(Snapshot(*c));
    result.totals += result.per_worker.back();
  }
  result.avg_cpu_utilization =
      result.elapsed_seconds > 0.0
          ? static_cast<double>(result.totals.compute_busy_ns) /
                (result.elapsed_seconds * 1e9 * total_cores)
          : 0.0;
  for (auto& worker : workers) {
    for (auto& line : worker->TakeOutputs()) {
      result.outputs.push_back(std::move(line));
    }
  }

  // --- Trace merge & export ---
  if (tracer != nullptr) {
    const Tracer::MergedTrace merged = tracer->Merge();
    result.trace_enabled = true;
    result.trace_events = static_cast<int64_t>(merged.events.size());
    result.trace_events_dropped = merged.dropped;
    result.stage_latencies = BuildStageLatencies(merged.events);
    if (merged.dropped > 0) {
      GM_LOG_WARN << "trace rings overflowed: " << merged.dropped
                  << " event(s) dropped (raise RunOptions::trace_ring_capacity)";
    }
    if (!options.trace_json_path.empty()) {
      if (WriteChromeTrace(merged, options.trace_json_path)) {
        result.trace_file = options.trace_json_path;
      } else {
        GM_LOG_ERROR << "failed to write trace file " << options.trace_json_path;
      }
    }
  }

  workers.clear();  // tear down before the network
  return result;
}

}  // namespace gminer
