// The task model of §4.2. A task encapsulates one unit of graph mining work:
// a growing subgraph `g`, the `candidates` to involve next round, and an
// app-defined context. Its lifetime walks the status machine
//
//   active ──(needs remote candidates)──▶ inactive ──(pulled)──▶ ready ─▶ active
//      └──(result reported / no result possible)──▶ dead
//
// Concrete mining algorithms subclass TaskBase (or the typed Task<ContextT>
// sugar mirroring Listing 1) and implement Update().
#ifndef GMINER_CORE_TASK_H_
#define GMINER_CORE_TASK_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "core/subgraph.h"
#include "graph/types.h"
#include "storage/vertex_record.h"

namespace gminer {

enum class TaskStatus : uint8_t {
  kActive = 0,
  kInactive = 1,
  kReady = 2,
  kDead = 3,
};

class TaskBase;

// The view of the worker a task sees during Update(): candidate vertex
// lookup (local partition or RCV cache), task spawning (recursive splitting),
// result output, the shared aggregator, and cooperative cancellation.
class UpdateContext {
 public:
  virtual ~UpdateContext() = default;

  // Returns the record of a candidate vertex. Guaranteed non-null for every
  // id the task listed in candidates() before this round (the pipeline pulls
  // remote ones first); may be null for ids never requested.
  virtual const VertexRecord* GetVertex(VertexId v) = 0;

  // True when v resides in this worker's partition.
  virtual bool IsLocal(VertexId v) const = 0;

  // Hands a newly created task to the pipeline (the "split" operation of the
  // general mining schema, §4.1).
  virtual void Spawn(std::unique_ptr<TaskBase> task) = 0;

  // Emits one result line (collected into JobResult::outputs).
  virtual void Output(const std::string& line) = 0;

  // The worker-local aggregator; apps downcast to their concrete type to
  // absorb per-task results and read the global view (e.g. the globally best
  // clique size for pruning).
  virtual void* aggregator() = 0;

  // Long-running Update() implementations must poll this and return early
  // when set (job timeout / shutdown).
  virtual bool cancelled() const = 0;

  virtual WorkerId worker_id() const = 0;
  virtual int num_workers() const = 0;
  virtual Rng& rng() = 0;
};

class TaskBase {
 public:
  virtual ~TaskBase() = default;

  // One round of computation (§4.2). Access candidate records through `ctx`,
  // then either call set_candidates() with the next round's vertex ids or
  // MarkDead() when finished.
  virtual void Update(UpdateContext& ctx) = 0;

  // App-specific context (de)serialization; framework fields are handled by
  // Serialize()/Deserialize() below.
  virtual void SerializeBody(OutArchive& out) const = 0;
  virtual void DeserializeBody(InArchive& in) = 0;

  // --- fields of the task model ---
  Subgraph& subgraph() { return subgraph_; }
  const Subgraph& subgraph() const { return subgraph_; }

  const std::vector<VertexId>& candidates() const { return candidates_; }
  void set_candidates(std::vector<VertexId> c) { candidates_ = std::move(c); }
  void clear_candidates() { candidates_.clear(); }

  int round() const { return round_; }
  void advance_round() { ++round_; }

  void MarkDead() { dead_ = true; }
  bool dead() const { return dead_; }

  // Remote subset of candidates, computed by the pipeline after each round;
  // the LSH priority-queue key and the steal local-rate lr(t) derive from it.
  const std::vector<VertexId>& to_pull() const { return to_pull_; }
  void set_to_pull(std::vector<VertexId> p) { to_pull_ = std::move(p); }

  // Migration cost c(t) = |subG| + |candVtxs| (Eq. 2).
  size_t MigrationCost() const { return subgraph_.num_vertices() + candidates_.size(); }

  // Local rate lr(t) = (|cand| - |to_pull|) / |cand| (Eq. 3).
  double LocalRate() const {
    if (candidates_.empty()) {
      return 0.0;
    }
    return static_cast<double>(candidates_.size() - to_pull_.size()) /
           static_cast<double>(candidates_.size());
  }

  void Serialize(OutArchive& out) const {
    subgraph_.Serialize(out);
    out.WriteVector(candidates_);
    out.WriteVector(to_pull_);
    out.Write(round_);
    out.Write(dead_);
    SerializeBody(out);
  }

  void Deserialize(InArchive& in) {
    subgraph_.Deserialize(in);
    candidates_ = in.ReadVector<VertexId>();
    to_pull_ = in.ReadVector<VertexId>();
    round_ = in.Read<int>();
    dead_ = in.Read<bool>();
    DeserializeBody(in);
  }

  int64_t ByteSize() const {
    return subgraph_.ByteSize() +
           static_cast<int64_t>(candidates_.capacity() * sizeof(VertexId)) +
           static_cast<int64_t>(to_pull_.capacity() * sizeof(VertexId)) +
           static_cast<int64_t>(sizeof(TaskBase));
  }

  // Bytes currently registered with the cluster memory tracker for this task.
  // Managed by the runtime (worker / task store); not serialized.
  int64_t accounted_bytes = 0;

  // Tracing runtime state (common/trace.h): process-unique span id for the
  // lifecycle events and the timestamp of the last queue/CPQ admission. Not
  // serialized — a migrated, spilled or recovered task starts a fresh span
  // on its new home, so residency is what the timeline shows.
  uint64_t trace_id = 0;
  int64_t trace_enqueue_ns = 0;

 private:
  Subgraph subgraph_;
  std::vector<VertexId> candidates_;
  std::vector<VertexId> to_pull_;
  int round_ = 0;
  bool dead_ = false;
};

// Typed sugar mirroring the paper's Listing 1: Task<ContextT> carries a
// trivially copyable context that is serialized automatically.
template <typename ContextT>
class Task : public TaskBase {
 public:
  static_assert(std::is_trivially_copyable_v<ContextT>,
                "ContextT must be trivially copyable; use TaskBase directly otherwise");

  ContextT& context() { return context_; }
  const ContextT& context() const { return context_; }

  void SerializeBody(OutArchive& out) const override { out.Write(context_); }
  void DeserializeBody(InArchive& in) override { context_ = in.Read<ContextT>(); }

 private:
  ContextT context_{};
};

}  // namespace gminer

#endif  // GMINER_CORE_TASK_H_
