#include "core/report.h"

#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace gminer {

namespace {

void AppendCounters(std::ostringstream& out, const CountersSnapshot& c) {
  out << "{\"net_bytes_sent\":" << c.net_bytes_sent
      << ",\"net_bytes_received\":" << c.net_bytes_received
      << ",\"net_messages\":" << c.net_messages
      << ",\"net_messages_delivered\":" << c.net_messages_delivered
      << ",\"net_messages_dropped\":" << c.net_messages_dropped
      << ",\"net_bytes_dropped\":" << c.net_bytes_dropped
      << ",\"net_messages_duplicated\":" << c.net_messages_duplicated
      << ",\"net_bytes_duplicated\":" << c.net_bytes_duplicated
      << ",\"net_messages_delayed\":" << c.net_messages_delayed
      << ",\"pull_requests\":" << c.pull_requests
      << ",\"pull_responses\":" << c.pull_responses << ",\"cache_hits\":" << c.cache_hits
      << ",\"cache_misses\":" << c.cache_misses
      << ",\"disk_bytes_written\":" << c.disk_bytes_written
      << ",\"disk_bytes_read\":" << c.disk_bytes_read
      << ",\"tasks_created\":" << c.tasks_created
      << ",\"tasks_completed\":" << c.tasks_completed
      << ",\"tasks_stolen_in\":" << c.tasks_stolen_in
      << ",\"tasks_stolen_out\":" << c.tasks_stolen_out
      << ",\"update_rounds\":" << c.update_rounds
      << ",\"compute_busy_ns\":" << c.compute_busy_ns
      << ",\"pull_retries\":" << c.pull_retries
      << ",\"duplicate_pull_responses\":" << c.duplicate_pull_responses
      << ",\"heartbeat_misses\":" << c.heartbeat_misses
      << ",\"failovers\":" << c.failovers
      << ",\"tasks_adopted\":" << c.tasks_adopted
      << ",\"recovery_wall_ns\":" << c.recovery_wall_ns << "}";
}

}  // namespace

std::string JobResultToJson(const JobResult& result) {
  std::ostringstream out;
  out << "{\"status\":\"" << JobStatusName(result.status) << "\""
      << ",\"elapsed_seconds\":" << result.elapsed_seconds
      << ",\"partition_seconds\":" << result.partition_seconds
      << ",\"peak_memory_bytes\":" << result.peak_memory_bytes
      << ",\"avg_cpu_utilization\":" << result.avg_cpu_utilization << ",\"totals\":";
  AppendCounters(out, result.totals);
  out << ",\"per_worker\":[";
  for (size_t i = 0; i < result.per_worker.size(); ++i) {
    if (i > 0) {
      out << ',';
    }
    AppendCounters(out, result.per_worker[i]);
  }
  out << "],\"utilization\":[";
  for (size_t i = 0; i < result.utilization.size(); ++i) {
    const auto& s = result.utilization[i];
    if (i > 0) {
      out << ',';
    }
    out << "{\"t\":" << s.t_seconds << ",\"cpu\":" << s.cpu_pct << ",\"net\":" << s.net_pct
        << ",\"disk\":" << s.disk_pct << "}";
  }
  out << "],\"num_outputs\":" << result.outputs.size() << "}";
  return out.str();
}

void WriteJobResultJson(const JobResult& result, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  GM_CHECK(out.good()) << "cannot open " << path;
  out << JobResultToJson(result) << '\n';
}

}  // namespace gminer
