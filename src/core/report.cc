#include "core/report.h"

#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace gminer {

namespace {

void AppendCounters(std::ostringstream& out, const CountersSnapshot& c) {
  out << "{\"net_bytes_sent\":" << c.net_bytes_sent
      << ",\"net_bytes_received\":" << c.net_bytes_received
      << ",\"net_messages\":" << c.net_messages
      << ",\"net_messages_delivered\":" << c.net_messages_delivered
      << ",\"net_messages_dropped\":" << c.net_messages_dropped
      << ",\"net_bytes_dropped\":" << c.net_bytes_dropped
      << ",\"net_messages_duplicated\":" << c.net_messages_duplicated
      << ",\"net_bytes_duplicated\":" << c.net_bytes_duplicated
      << ",\"net_messages_delayed\":" << c.net_messages_delayed
      << ",\"pull_requests\":" << c.pull_requests
      << ",\"pull_responses\":" << c.pull_responses
      << ",\"pull_batches_sent\":" << c.pull_batches_sent
      << ",\"dedup_hits\":" << c.dedup_hits
      << ",\"pull_batch_size_p50\":" << c.PullBatchSizePercentile(0.50)
      << ",\"pull_batch_size_p95\":" << c.PullBatchSizePercentile(0.95)
      << ",\"cache_hits\":" << c.cache_hits
      << ",\"cache_misses\":" << c.cache_misses
      << ",\"disk_bytes_written\":" << c.disk_bytes_written
      << ",\"disk_bytes_read\":" << c.disk_bytes_read
      << ",\"tasks_created\":" << c.tasks_created
      << ",\"tasks_completed\":" << c.tasks_completed
      << ",\"tasks_stolen_in\":" << c.tasks_stolen_in
      << ",\"tasks_stolen_out\":" << c.tasks_stolen_out
      << ",\"update_rounds\":" << c.update_rounds
      << ",\"compute_busy_ns\":" << c.compute_busy_ns
      << ",\"pull_retries\":" << c.pull_retries
      << ",\"duplicate_pull_responses\":" << c.duplicate_pull_responses
      << ",\"heartbeat_misses\":" << c.heartbeat_misses
      << ",\"failovers\":" << c.failovers
      << ",\"tasks_adopted\":" << c.tasks_adopted
      << ",\"recovery_wall_ns\":" << c.recovery_wall_ns << "}";
}

// Final registry state (metrics/registry.h): flat name→value tables plus the
// log2-bucket histograms. Names are escaped — registrations are code-side
// literals, but hostile names must not be able to break the document.
void AppendMetricsSnapshot(std::ostringstream& out, const MetricsSnapshot& snap) {
  out << "{\"counters\":{";
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    if (i > 0) {
      out << ',';
    }
    out << '"' << JsonEscape(snap.counters[i].first) << "\":" << snap.counters[i].second;
  }
  out << "},\"gauges\":{";
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i > 0) {
      out << ',';
    }
    out << '"' << JsonEscape(snap.gauges[i].first) << "\":" << snap.gauges[i].second;
  }
  out << "},\"histograms\":{";
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramCell& h = snap.histograms[i];
    if (i > 0) {
      out << ',';
    }
    out << '"' << JsonEscape(h.name) << "\":{\"count\":" << h.count << ",\"sum\":" << h.sum
        << ",\"buckets\":[";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) {
        out << ',';
      }
      out << h.buckets[b];
    }
    out << "]}";
  }
  out << "}}";
}

}  // namespace

std::string JobResultToJson(const JobResult& result) {
  std::ostringstream out;
  out << "{\"schema_version\":" << kReportSchemaVersion
      << ",\"status\":\"" << JsonEscape(JobStatusName(result.status)) << "\""
      << ",\"elapsed_seconds\":" << result.elapsed_seconds
      << ",\"partition_seconds\":" << result.partition_seconds
      << ",\"peak_memory_bytes\":" << result.peak_memory_bytes
      << ",\"avg_cpu_utilization\":" << result.avg_cpu_utilization << ",\"totals\":";
  AppendCounters(out, result.totals);
  out << ",\"per_worker\":[";
  for (size_t i = 0; i < result.per_worker.size(); ++i) {
    if (i > 0) {
      out << ',';
    }
    AppendCounters(out, result.per_worker[i]);
  }
  out << "],\"utilization\":[";
  for (size_t i = 0; i < result.utilization.size(); ++i) {
    const auto& s = result.utilization[i];
    if (i > 0) {
      out << ',';
    }
    out << "{\"t\":" << s.t_seconds << ",\"cpu\":" << s.cpu_pct << ",\"net\":" << s.net_pct
        << ",\"disk\":" << s.disk_pct << "}";
  }
  out << "],\"trace\":{\"enabled\":" << (result.trace_enabled ? "true" : "false")
      << ",\"events\":" << result.trace_events
      << ",\"trace_events_dropped\":" << result.trace_events_dropped
      << ",\"file\":\"" << JsonEscape(result.trace_file) << "\",\"stages\":[";
  for (size_t i = 0; i < result.stage_latencies.size(); ++i) {
    const StageLatency& s = result.stage_latencies[i];
    if (i > 0) {
      out << ',';
    }
    out << "{\"stage\":\"" << JsonEscape(s.stage) << "\",\"count\":" << s.count
        << ",\"total_ns\":" << s.total_ns << ",\"max_ns\":" << s.max_ns
        << ",\"p50_ns\":" << s.p50_ns << ",\"p95_ns\":" << s.p95_ns
        << ",\"p99_ns\":" << s.p99_ns << "}";
  }
  out << "]},\"metrics\":{\"enabled\":" << (result.metrics_enabled ? "true" : "false")
      << ",\"workers\":[";
  for (size_t i = 0; i < result.final_metrics.size(); ++i) {
    if (i > 0) {
      out << ',';
    }
    AppendMetricsSnapshot(out, result.final_metrics[i]);
  }
  out << "],\"cluster\":";
  AppendMetricsSnapshot(out, result.cluster_metrics);
  out << "},\"num_outputs\":" << result.outputs.size() << "}";
  return out.str();
}

void WriteJobResultJson(const JobResult& result, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  GM_CHECK(out.good()) << "cannot open " << path;
  out << JobResultToJson(result) << '\n';
}

}  // namespace gminer
