// The master node (Fig. 4): drives partitioning (in Cluster), collects
// progress reports, schedules task stealing (REQ → MIGRATE → tasks / No_Task),
// folds aggregator partials into the global value it broadcasts back, detects
// termination, and enforces the time / memory budgets.
//
// With fault tolerance enabled it is also the failure detector: every message
// from a worker doubles as a heartbeat, and a worker silent for longer than
// heartbeat_timeout_ms is declared dead — fenced via ClusterState::kill_worker
// and, when a checkpoint directory exists, recovered online by sending
// kAdoptTasks to a surviving worker (DESIGN.md "Fault model & recovery
// protocol"). The job is not considered complete while an adoption is still
// in flight, so live_tasks hitting zero between a death and its recovery
// cannot end the job early.
//
// Threading: the master runs entirely on its own single thread (Run()); it
// owns no locks and holds none of the annotated mutexes in DESIGN.md's lock
// hierarchy. Everything it shares with workers goes through the Network's
// mailboxes or the atomics in ClusterState.
#ifndef GMINER_CORE_MASTER_H_
#define GMINER_CORE_MASTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "core/cluster_state.h"
#include "core/job.h"
#include "metrics/cluster_series.h"
#include "net/network.h"

namespace gminer {

class Master {
 public:
  // `checkpoint_dir` names the seed-checkpoint directory used for online
  // task adoption (empty = a dead worker fails the job with kWorkerLost).
  // `bounded_shutdown` bounds the final-partial wait, for runs where faults
  // may have eaten shutdown traffic. `metrics` (may be null) receives the
  // live cluster view: worker heartbeats/progress/liveness, job phase, and
  // the kMetricsReport snapshots workers piggyback on the heartbeat path.
  Master(const JobConfig& config, Network* net, ClusterState* state, JobBase* job,
         std::string checkpoint_dir = {}, bool bounded_shutdown = false,
         ClusterMetrics* metrics = nullptr);

  // Runs the control loop until the job completes or a budget trips, then
  // shuts the workers down and collects their final aggregator partials.
  // Returns the serialized final global aggregate (empty if no aggregator).
  std::vector<uint8_t> Run();

 private:
  void Dispatch(NetMessage& msg);
  void HandleProgress(WorkerId from, InArchive in);
  void HandleMetricsReport(WorkerId from, InArchive in);
  void HandleStealRequest(WorkerId requester);
  void HandleAggPartial(WorkerId from, InArchive in);
  void HandleAdoptDone(InArchive in);
  void BroadcastGlobal();
  bool JobComplete() const;
  void CheckBudgets();

  // Failure detection and recovery.
  bool IsWorker(WorkerId w) const { return w >= 0 && w < config_.num_workers; }
  void CheckFailures(int64_t now_ns);
  void DeclareDead(WorkerId w, int64_t now_ns);
  void IssueAdoption(WorkerId dead, int64_t now_ns);
  void RetryAdoptions(int64_t now_ns);
  WorkerId PickAdopter() const;
  int LiveWorkers() const;

  const JobConfig& config_;
  Network* net_;
  ClusterState* state_;
  JobBase* job_;
  const WorkerId master_id_;
  const std::string checkpoint_dir_;
  const bool bounded_shutdown_;
  ClusterMetrics* metrics_;  // may be null (metrics plane off)

  struct WorkerProgress {
    uint64_t inactive = 0;
    uint64_t ready = 0;
    int64_t local_tasks = 0;
  };
  struct WorkerHealth {
    int64_t last_seen_ns = 0;
    bool dead = false;
    bool seeded = false;
    bool recovered = false;  // first kAdoptDone for this worker processed
  };
  // An issued kAdoptTasks awaiting its kAdoptDone ack; re-sent after
  // adoption_retry_ms (the adopter handles duplicates idempotently).
  struct PendingAdoption {
    WorkerId dead = kInvalidWorker;
    WorkerId adopter = kInvalidWorker;
    int64_t deadline_ns = 0;
  };

  std::vector<WorkerProgress> progress_;
  std::vector<WorkerHealth> health_;
  std::vector<WorkerId> adopter_of_;  // dead worker → its current adopter
  std::vector<PendingAdoption> pending_adoptions_;
  std::vector<std::vector<uint8_t>> latest_partials_;  // per worker, cumulative
  int seeded_workers_ = 0;
  int64_t start_ns_ = 0;
};

}  // namespace gminer

#endif  // GMINER_CORE_MASTER_H_
