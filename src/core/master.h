// The master node (Fig. 4): drives partitioning (in Cluster), collects
// progress reports, schedules task stealing (REQ → MIGRATE → tasks / No_Task),
// folds aggregator partials into the global value it broadcasts back, detects
// termination, and enforces the time / memory budgets.
#ifndef GMINER_CORE_MASTER_H_
#define GMINER_CORE_MASTER_H_

#include <memory>
#include <vector>

#include "common/config.h"
#include "core/cluster_state.h"
#include "core/job.h"
#include "net/network.h"

namespace gminer {

class Master {
 public:
  Master(const JobConfig& config, Network* net, ClusterState* state, JobBase* job);

  // Runs the control loop until the job completes or a budget trips, then
  // shuts the workers down and collects their final aggregator partials.
  // Returns the serialized final global aggregate (empty if no aggregator).
  std::vector<uint8_t> Run();

 private:
  void HandleProgress(WorkerId from, InArchive in);
  void HandleStealRequest(WorkerId requester);
  void HandleAggPartial(WorkerId from, InArchive in);
  void BroadcastGlobal();
  bool JobComplete() const;
  void CheckBudgets();

  const JobConfig& config_;
  Network* net_;
  ClusterState* state_;
  JobBase* job_;
  const WorkerId master_id_;

  struct WorkerProgress {
    uint64_t inactive = 0;
    uint64_t ready = 0;
    int64_t local_tasks = 0;
  };
  std::vector<WorkerProgress> progress_;
  std::vector<std::vector<uint8_t>> latest_partials_;  // per worker, cumulative
  int seeded_workers_ = 0;
  int64_t start_ns_ = 0;
};

}  // namespace gminer

#endif  // GMINER_CORE_MASTER_H_
