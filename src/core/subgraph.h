// The subgraph field `g` of a task (§4.2): the topology of the intermediate
// subgraph a task grows, shrinks, or reports. Stored as explicit vertex and
// edge lists — mining apps that need adjacency indexing build it per round,
// which keeps the serialized (migrated / spilled) form compact.
#ifndef GMINER_CORE_SUBGRAPH_H_
#define GMINER_CORE_SUBGRAPH_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "common/serialize.h"
#include "graph/types.h"

namespace gminer {

class Subgraph {
 public:
  void AddVertex(VertexId v) {
    if (!HasVertex(v)) {
      vertices_.push_back(v);
    }
  }

  void AddEdge(VertexId u, VertexId v) {
    AddVertex(u);
    AddVertex(v);
    edges_.emplace_back(u, v);
  }

  bool HasVertex(VertexId v) const {
    return std::find(vertices_.begin(), vertices_.end(), v) != vertices_.end();
  }

  const std::vector<VertexId>& vertices() const { return vertices_; }
  const std::vector<std::pair<VertexId, VertexId>>& edges() const { return edges_; }

  size_t num_vertices() const { return vertices_.size(); }
  size_t num_edges() const { return edges_.size(); }

  void Clear() {
    vertices_.clear();
    edges_.clear();
  }

  void Serialize(OutArchive& out) const {
    out.WriteVector(vertices_);
    out.Write<uint64_t>(edges_.size());
    for (const auto& [u, v] : edges_) {
      out.Write(u);
      out.Write(v);
    }
  }

  void Deserialize(InArchive& in) {
    vertices_ = in.ReadVector<VertexId>();
    const uint64_t n = in.Read<uint64_t>();
    edges_.clear();
    edges_.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      const VertexId u = in.Read<VertexId>();
      const VertexId v = in.Read<VertexId>();
      edges_.emplace_back(u, v);
    }
  }

  int64_t ByteSize() const {
    return static_cast<int64_t>(sizeof(Subgraph)) +
           static_cast<int64_t>(vertices_.capacity() * sizeof(VertexId)) +
           static_cast<int64_t>(edges_.capacity() * sizeof(std::pair<VertexId, VertexId>));
  }

 private:
  std::vector<VertexId> vertices_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

}  // namespace gminer

#endif  // GMINER_CORE_SUBGRAPH_H_
