#include "core/master.h"

#include <algorithm>

#include "common/logging.h"
#include "common/serialize.h"
#include "common/timer.h"

namespace gminer {

Master::Master(const JobConfig& config, Network* net, ClusterState* state, JobBase* job)
    : config_(config),
      net_(net),
      state_(state),
      job_(job),
      master_id_(config.num_workers),
      progress_(static_cast<size_t>(config.num_workers)),
      latest_partials_(static_cast<size_t>(config.num_workers)) {}

bool Master::JobComplete() const {
  return seeded_workers_ == config_.num_workers &&
         state_->live_tasks.load(std::memory_order_relaxed) == 0;
}

void Master::CheckBudgets() {
  if (state_->cancelled.load(std::memory_order_relaxed)) {
    return;
  }
  if (config_.time_budget_seconds > 0.0) {
    const double elapsed = static_cast<double>(MonotonicNanos() - start_ns_) / 1e9;
    if (elapsed > config_.time_budget_seconds) {
      GM_LOG_INFO << "master: time budget exceeded, cancelling job";
      state_->Cancel(JobStatus::kTimeout);
      return;
    }
  }
  if (config_.memory_budget_bytes > 0 &&
      state_->memory.OverBudget(static_cast<int64_t>(config_.memory_budget_bytes))) {
    GM_LOG_INFO << "master: memory budget exceeded, cancelling job";
    state_->Cancel(JobStatus::kOutOfMemory);
  }
}

void Master::HandleProgress(WorkerId from, InArchive in) {
  WorkerProgress& p = progress_[static_cast<size_t>(from)];
  p.inactive = in.Read<uint64_t>();
  p.ready = in.Read<uint64_t>();
  p.local_tasks = in.Read<int64_t>();
}

void Master::HandleStealRequest(WorkerId requester) {
  // Pick the most heavily loaded worker by reported inactive-task count; it
  // must have more than one migration batch to spare, otherwise decline.
  WorkerId victim = kInvalidWorker;
  uint64_t victim_load = static_cast<uint64_t>(config_.steal_batch);
  for (int w = 0; w < config_.num_workers; ++w) {
    if (w == requester) {
      continue;
    }
    if (progress_[static_cast<size_t>(w)].inactive > victim_load) {
      victim_load = progress_[static_cast<size_t>(w)].inactive;
      victim = w;
    }
  }
  if (victim == kInvalidWorker) {
    net_->Send(master_id_, requester, MessageType::kNoTask, {});
    return;
  }
  OutArchive out;
  out.Write<WorkerId>(requester);
  out.Write<int32_t>(config_.steal_batch);
  net_->Send(master_id_, victim, MessageType::kMigrateCommand, out.TakeBuffer());
}

void Master::HandleAggPartial(WorkerId from, InArchive in) {
  in.Read<uint8_t>();  // final flag, handled by the caller
  std::vector<uint8_t> rest;
  rest.reserve(in.remaining());
  while (!in.AtEnd()) {
    rest.push_back(in.Read<uint8_t>());
  }
  latest_partials_[static_cast<size_t>(from)] = std::move(rest);
  BroadcastGlobal();
}

void Master::BroadcastGlobal() {
  std::unique_ptr<AggregatorBase> fold = job_->MakeAggregator();
  if (fold == nullptr) {
    return;
  }
  for (const auto& partial : latest_partials_) {
    if (partial.empty()) {
      continue;
    }
    InArchive in(partial.data(), partial.size());
    fold->MergePartial(in);
  }
  OutArchive global;
  fold->SerializeGlobal(global);
  for (int w = 0; w < config_.num_workers; ++w) {
    net_->Send(master_id_, w, MessageType::kAggGlobal, global.buffer());
  }
}

std::vector<uint8_t> Master::Run() {
  start_ns_ = MonotonicNanos();
  // Main control loop. Progress reports arrive every few milliseconds from
  // every worker, so blocking receives double as budget-check ticks.
  while (!JobComplete() && !state_->cancelled.load(std::memory_order_relaxed)) {
    std::optional<NetMessage> msg = net_->Receive(master_id_);
    if (!msg.has_value()) {
      break;  // network closed externally
    }
    switch (msg->type) {
      case MessageType::kProgressReport:
        HandleProgress(msg->from, InArchive(std::move(msg->payload)));
        break;
      case MessageType::kSeedDone:
        ++seeded_workers_;
        break;
      case MessageType::kStealRequest:
        HandleStealRequest(msg->from);
        break;
      case MessageType::kAggPartial:
        HandleAggPartial(msg->from, InArchive(std::move(msg->payload)));
        break;
      default:
        break;
    }
    CheckBudgets();
  }

  // Shutdown: each worker acknowledges with a final aggregator partial.
  for (int w = 0; w < config_.num_workers; ++w) {
    net_->Send(master_id_, w, MessageType::kShutdown, {});
  }
  int finals = 0;
  while (finals < config_.num_workers) {
    std::optional<NetMessage> msg = net_->Receive(master_id_);
    if (!msg.has_value()) {
      break;
    }
    if (msg->type == MessageType::kAggPartial) {
      const uint8_t final_flag = msg->payload.empty() ? 0 : msg->payload[0];
      HandleAggPartial(msg->from, InArchive(std::move(msg->payload)));
      if (final_flag != 0) {
        ++finals;
      }
    }
    // Other message types arriving during teardown (late progress reports,
    // in-flight pulls already answered) are dropped.
  }

  std::unique_ptr<AggregatorBase> fold = job_->MakeAggregator();
  if (fold == nullptr) {
    return {};
  }
  for (const auto& partial : latest_partials_) {
    if (partial.empty()) {
      continue;
    }
    InArchive in(partial.data(), partial.size());
    fold->MergePartial(in);
  }
  OutArchive global;
  fold->SerializeGlobal(global);
  return global.TakeBuffer();
}

}  // namespace gminer
