#include "core/master.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/serialize.h"
#include "common/timer.h"
#include "common/trace.h"
#include "storage/spill_file.h"

namespace gminer {

namespace {

// Shutdown commands lost to injected faults are re-broadcast at this period.
constexpr int64_t kShutdownResendNs = 200'000'000;

}  // namespace

Master::Master(const JobConfig& config, Network* net, ClusterState* state, JobBase* job,
               std::string checkpoint_dir, bool bounded_shutdown, ClusterMetrics* metrics)
    : config_(config),
      net_(net),
      state_(state),
      job_(job),
      master_id_(config.num_workers),
      checkpoint_dir_(std::move(checkpoint_dir)),
      bounded_shutdown_(bounded_shutdown),
      metrics_(metrics),
      progress_(static_cast<size_t>(config.num_workers)),
      health_(static_cast<size_t>(config.num_workers)),
      adopter_of_(static_cast<size_t>(config.num_workers), kInvalidWorker),
      latest_partials_(static_cast<size_t>(config.num_workers)) {}

bool Master::JobComplete() const {
  // pending_adoptions_ keeps the job alive between a worker's death and the
  // adopter's ack: live_tasks can legitimately touch zero in that window even
  // though the dead worker's checkpointed tasks are still owed a re-run.
  return seeded_workers_ == config_.num_workers &&
         state_->live_tasks.load(std::memory_order_relaxed) == 0 &&
         pending_adoptions_.empty() &&
         state_->pending_failovers.load(std::memory_order_acquire) == 0;
}

int Master::LiveWorkers() const {
  int live = 0;
  for (const auto& h : health_) {
    live += h.dead ? 0 : 1;
  }
  return live;
}

void Master::CheckBudgets() {
  if (state_->cancelled.load(std::memory_order_relaxed)) {
    return;
  }
  if (config_.time_budget_seconds > 0.0) {
    const double elapsed = static_cast<double>(MonotonicNanos() - start_ns_) / 1e9;
    if (elapsed > config_.time_budget_seconds) {
      GM_LOG_INFO << "master: time budget exceeded, cancelling job";
      state_->Cancel(JobStatus::kTimeout);
      return;
    }
  }
  if (config_.memory_budget_bytes > 0 &&
      state_->memory.OverBudget(static_cast<int64_t>(config_.memory_budget_bytes))) {
    GM_LOG_INFO << "master: memory budget exceeded, cancelling job";
    state_->Cancel(JobStatus::kOutOfMemory);
  }
}

void Master::HandleProgress(WorkerId from, InArchive in) {
  WorkerProgress& p = progress_[static_cast<size_t>(from)];
  p.inactive = in.Read<uint64_t>();
  p.ready = in.Read<uint64_t>();
  p.local_tasks = in.Read<int64_t>();
  const uint8_t seeded = in.Read<uint8_t>();  // piggybacked seeding status
  if (seeded != 0 && IsWorker(from) && !health_[static_cast<size_t>(from)].seeded) {
    health_[static_cast<size_t>(from)].seeded = true;
    ++seeded_workers_;
  }
  if (metrics_ != nullptr) {
    metrics_->UpdateWorkerProgress(from, p.inactive, p.ready, p.local_tasks, seeded != 0);
  }
}

void Master::HandleMetricsReport(WorkerId from, InArchive in) {
  // Deserialize unconditionally: a framed payload must be consumed even when
  // the plane is off on the master side (protocol framing consistency).
  MetricsSnapshot snap = MetricsSnapshot::Deserialize(in);
  if (metrics_ != nullptr && IsWorker(from)) {
    metrics_->RecordWorkerSnapshot(from, std::move(snap));
  }
}

void Master::HandleStealRequest(WorkerId requester) {
  // Pick the most heavily loaded worker by reported inactive-task count; it
  // must have more than one migration batch to spare, otherwise decline.
  WorkerId victim = kInvalidWorker;
  uint64_t victim_load = static_cast<uint64_t>(config_.steal_batch);
  for (int w = 0; w < config_.num_workers; ++w) {
    if (w == requester || health_[static_cast<size_t>(w)].dead) {
      continue;
    }
    if (progress_[static_cast<size_t>(w)].inactive > victim_load) {
      victim_load = progress_[static_cast<size_t>(w)].inactive;
      victim = w;
    }
  }
  if (victim == kInvalidWorker) {
    net_->Send(master_id_, requester, MessageType::kNoTask, {});
    return;
  }
  OutArchive out;
  out.Write<WorkerId>(requester);
  out.Write<int32_t>(config_.steal_batch);
  net_->Send(master_id_, victim, MessageType::kMigrateCommand, out.TakeBuffer());
}

void Master::HandleAggPartial(WorkerId from, InArchive in) {
  in.Read<uint8_t>();  // final flag, handled by the caller
  std::vector<uint8_t> rest;
  rest.reserve(in.remaining());
  while (!in.AtEnd()) {
    rest.push_back(in.Read<uint8_t>());
  }
  latest_partials_[static_cast<size_t>(from)] = std::move(rest);
  BroadcastGlobal();
}

void Master::BroadcastGlobal() {
  std::unique_ptr<AggregatorBase> fold = job_->MakeAggregator();
  if (fold == nullptr) {
    return;
  }
  for (const auto& partial : latest_partials_) {
    if (partial.empty()) {
      continue;
    }
    InArchive in(partial.data(), partial.size());
    fold->MergePartial(in);
  }
  OutArchive global;
  fold->SerializeGlobal(global);
  for (int w = 0; w < config_.num_workers; ++w) {
    if (!health_[static_cast<size_t>(w)].dead) {
      net_->Send(master_id_, w, MessageType::kAggGlobal, global.buffer());
    }
  }
}

void Master::CheckFailures(int64_t now_ns) {
  const int64_t timeout_ns = static_cast<int64_t>(config_.heartbeat_timeout_ms) * 1'000'000;
  for (int w = 0; w < config_.num_workers; ++w) {
    auto& h = health_[static_cast<size_t>(w)];
    if (h.dead) {
      continue;
    }
    // Fast path: the kill handler already fenced the worker (injector or
    // timer trigger) — no need to wait out the heartbeat window. The timeout
    // path remains for failures nobody announces (e.g. a blacked-out worker).
    if (state_->WasKilled(w) || now_ns - h.last_seen_ns > timeout_ns) {
      DeclareDead(w, now_ns);
    }
  }
}

void Master::DeclareDead(WorkerId w, int64_t now_ns) {
  auto& h = health_[static_cast<size_t>(w)];
  const int64_t silent_ns = now_ns - h.last_seen_ns;
  GM_LOG_WARN << "master: worker " << w << " silent for " << silent_ns / 1'000'000
              << " ms, declaring dead";
  TraceInstant(TraceEventType::kHeartbeatMiss, static_cast<uint64_t>(w),
               static_cast<int32_t>(silent_ns / 1'000'000));
  TraceInstant(TraceEventType::kWorkerDead, static_cast<uint64_t>(w));
  h.dead = true;
  if (metrics_ != nullptr) {
    metrics_->MarkDead(w);
  }
  if (!h.seeded) {
    // Its seeds (if any were generated before the crash) come back through
    // the checkpoint, not through a kSeedDone that will never arrive.
    h.seeded = true;
    ++seeded_workers_;
  }
  if (WorkerCounters* c = net_->counter(w)) {
    const int64_t interval_ns =
        static_cast<int64_t>(std::max(1, config_.progress_interval_ms)) * 1'000'000;
    c->heartbeat_misses.fetch_add(std::max<int64_t>(1, silent_ns / interval_ns),
                                  std::memory_order_relaxed);
  }
  if (state_->kill_worker) {
    state_->kill_worker(w);  // fence the endpoint, halt the pipeline, reap
  }
  latest_partials_[static_cast<size_t>(w)].clear();  // the adopter re-derives it
  if (checkpoint_dir_.empty()) {
    GM_LOG_ERROR << "master: no checkpoint dir, cannot recover worker " << w;
    state_->Cancel(JobStatus::kWorkerLost);
    return;
  }
  IssueAdoption(w, now_ns);
  // Re-home any earlier casualty whose adopter just died: its checkpoint file
  // is still on disk, so a fresh adopter can take over from scratch.
  for (int d = 0; d < config_.num_workers; ++d) {
    if (d != w && health_[static_cast<size_t>(d)].dead &&
        adopter_of_[static_cast<size_t>(d)] == w) {
      IssueAdoption(d, now_ns);
    }
  }
}

WorkerId Master::PickAdopter() const {
  // Least-loaded survivor by last reported resident-task count.
  WorkerId best = kInvalidWorker;
  int64_t best_load = 0;
  for (int w = 0; w < config_.num_workers; ++w) {
    if (health_[static_cast<size_t>(w)].dead) {
      continue;
    }
    const int64_t load = progress_[static_cast<size_t>(w)].local_tasks;
    if (best == kInvalidWorker || load < best_load) {
      best = w;
      best_load = load;
    }
  }
  return best;
}

void Master::IssueAdoption(WorkerId dead, int64_t now_ns) {
  const WorkerId adopter = PickAdopter();
  if (adopter == kInvalidWorker) {
    GM_LOG_ERROR << "master: no surviving worker to adopt worker " << dead;
    state_->Cancel(JobStatus::kWorkerLost);
    return;
  }
  adopter_of_[static_cast<size_t>(dead)] = adopter;
  pending_adoptions_.erase(
      std::remove_if(pending_adoptions_.begin(), pending_adoptions_.end(),
                     [dead](const PendingAdoption& p) { return p.dead == dead; }),
      pending_adoptions_.end());
  pending_adoptions_.push_back(
      {dead, adopter,
       now_ns + static_cast<int64_t>(config_.adoption_retry_ms) * 1'000'000});
  GM_LOG_INFO << "master: worker " << adopter << " adopts dead worker " << dead;
  TraceInstant(TraceEventType::kAdoptIssued, static_cast<uint64_t>(dead), adopter);
  OutArchive out;
  out.Write<WorkerId>(dead);
  out.WriteString(CheckpointTaskFile(checkpoint_dir_, dead));
  net_->Send(master_id_, adopter, MessageType::kAdoptTasks, out.TakeBuffer());
}

void Master::RetryAdoptions(int64_t now_ns) {
  for (auto& p : pending_adoptions_) {
    if (p.deadline_ns > now_ns || health_[static_cast<size_t>(p.adopter)].dead) {
      continue;  // a dead adopter's wards were re-homed by DeclareDead
    }
    p.deadline_ns = now_ns + static_cast<int64_t>(config_.adoption_retry_ms) * 1'000'000;
    GM_LOG_WARN << "master: re-sending kAdoptTasks for worker " << p.dead << " to worker "
                << p.adopter;
    OutArchive out;
    out.Write<WorkerId>(p.dead);
    out.WriteString(CheckpointTaskFile(checkpoint_dir_, p.dead));
    net_->Send(master_id_, p.adopter, MessageType::kAdoptTasks, out.TakeBuffer());
  }
}

void Master::HandleAdoptDone(InArchive in) {
  const WorkerId dead = in.Read<WorkerId>();
  TraceInstant(TraceEventType::kAdoptDone, static_cast<uint64_t>(dead));
  in.Read<uint64_t>();  // adopted-task count, informational
  pending_adoptions_.erase(
      std::remove_if(pending_adoptions_.begin(), pending_adoptions_.end(),
                     [dead](const PendingAdoption& p) { return p.dead == dead; }),
      pending_adoptions_.end());
  if (IsWorker(dead) && !health_[static_cast<size_t>(dead)].recovered) {
    health_[static_cast<size_t>(dead)].recovered = true;
    // Balance the kill handler's increment — only if it ran for this worker
    // (a heartbeat-detected death with no kill handler never incremented).
    if (state_->WasKilled(dead)) {
      state_->pending_failovers.fetch_sub(1, std::memory_order_acq_rel);
    }
  }
}

void Master::Dispatch(NetMessage& msg) {
  switch (msg.type) {
    case MessageType::kProgressReport:
      HandleProgress(msg.from, InArchive(std::move(msg.payload)));
      break;
    case MessageType::kSeedDone:
      if (IsWorker(msg.from) && !health_[static_cast<size_t>(msg.from)].seeded) {
        health_[static_cast<size_t>(msg.from)].seeded = true;
        ++seeded_workers_;
      }
      break;
    case MessageType::kStealRequest:
      HandleStealRequest(msg.from);
      break;
    case MessageType::kAggPartial:
      HandleAggPartial(msg.from, InArchive(std::move(msg.payload)));
      break;
    case MessageType::kAdoptDone:
      HandleAdoptDone(InArchive(std::move(msg.payload)));
      break;
    case MessageType::kMetricsReport:
      HandleMetricsReport(msg.from, InArchive(std::move(msg.payload)));
      break;
    default:
      break;
  }
}

std::vector<uint8_t> Master::Run() {
  start_ns_ = MonotonicNanos();
  for (auto& h : health_) {
    h.last_seen_ns = start_ns_;  // grace period measured from job start
  }
  if (metrics_ != nullptr) {
    metrics_->SetPhase("seeding");
  }
  bool running_phase = false;
  const auto tick = std::chrono::milliseconds(std::max(1, config_.progress_interval_ms));
  // Main control loop. Progress reports arrive every few milliseconds from
  // every worker and double as heartbeats; the timed receive keeps failure
  // detection and budget checks ticking even when the cluster goes silent.
  while (!JobComplete() && !state_->cancelled.load(std::memory_order_relaxed)) {
    std::optional<NetMessage> msg = net_->ReceiveFor(master_id_, tick);
    const int64_t now = MonotonicNanos();
    if (msg.has_value()) {
      const bool from_worker = IsWorker(msg->from);
      if (!from_worker || !health_[static_cast<size_t>(msg->from)].dead) {
        if (from_worker) {
          health_[static_cast<size_t>(msg->from)].last_seen_ns = now;
          if (metrics_ != nullptr) {
            metrics_->UpdateHeartbeat(msg->from, now);
          }
        }
        Dispatch(*msg);
      }
      // Zombie traffic (sent before the fence) is dropped on the floor.
    } else if (net_->IsClosed(master_id_)) {
      break;  // network closed externally
    }
    if (metrics_ != nullptr && !running_phase && seeded_workers_ == config_.num_workers) {
      running_phase = true;
      metrics_->SetPhase("running");
    }
    if (config_.enable_fault_tolerance) {
      CheckFailures(now);
      RetryAdoptions(now);
    }
    CheckBudgets();
  }
  if (metrics_ != nullptr) {
    metrics_->SetPhase("shutdown");
  }

  // Shutdown: each surviving worker acknowledges with a final aggregator
  // partial. Under fault injection the command or the ack can be lost, so
  // un-acked workers are re-prodded and (when bounded) the wait has a grace
  // deadline rather than hanging the job.
  std::vector<bool> acked(static_cast<size_t>(config_.num_workers), false);
  const auto broadcast_shutdown = [&] {
    for (int w = 0; w < config_.num_workers; ++w) {
      if (!health_[static_cast<size_t>(w)].dead && !acked[static_cast<size_t>(w)]) {
        net_->Send(master_id_, w, MessageType::kShutdown, {});
      }
    }
  };
  broadcast_shutdown();
  const int64_t shutdown_start_ns = MonotonicNanos();
  const int64_t grace_ns =
      bounded_shutdown_
          ? std::max<int64_t>(2 * config_.heartbeat_timeout_ms, 2000) * 1'000'000
          : 0;
  int64_t resend_at_ns = shutdown_start_ns + kShutdownResendNs;
  int finals = 0;
  while (finals < LiveWorkers()) {
    std::optional<NetMessage> msg = net_->ReceiveFor(master_id_, tick);
    const int64_t now = MonotonicNanos();
    if (!msg.has_value()) {
      if (net_->IsClosed(master_id_)) {
        break;
      }
      if (grace_ns > 0 && now - shutdown_start_ns > grace_ns) {
        GM_LOG_WARN << "master: shutdown grace elapsed with " << LiveWorkers() - finals
                    << " final report(s) missing";
        break;
      }
      if (now >= resend_at_ns) {
        broadcast_shutdown();
        resend_at_ns = now + kShutdownResendNs;
      }
      continue;
    }
    if (IsWorker(msg->from) && health_[static_cast<size_t>(msg->from)].dead) {
      continue;
    }
    if (msg->type == MessageType::kAggPartial) {
      const uint8_t final_flag = msg->payload.empty() ? 0 : msg->payload[0];
      const WorkerId from = msg->from;
      HandleAggPartial(from, InArchive(std::move(msg->payload)));
      if (final_flag != 0 && IsWorker(from) && !acked[static_cast<size_t>(from)]) {
        acked[static_cast<size_t>(from)] = true;
        ++finals;
      }
    }
    // Other message types arriving during teardown (late progress reports,
    // in-flight pulls already answered) are dropped.
  }

  std::unique_ptr<AggregatorBase> fold = job_->MakeAggregator();
  if (fold == nullptr) {
    return {};
  }
  for (const auto& partial : latest_partials_) {
    if (partial.empty()) {
      continue;
    }
    InArchive in(partial.data(), partial.size());
    fold->MergePartial(in);
  }
  OutArchive global;
  fold->SerializeGlobal(global);
  return global.TakeBuffer();
}

}  // namespace gminer
