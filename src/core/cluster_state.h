// Control-plane state shared by all workers and the master of one job run.
// This stands in for the cluster-wide invariants a real deployment maintains
// through its control messages: the global count of live tasks (termination
// detection for the independent-task model), cancellation, and the job-wide
// memory tracker.
#ifndef GMINER_CORE_CLUSTER_STATE_H_
#define GMINER_CORE_CLUSTER_STATE_H_

#include <atomic>

#include "core/job_result.h"
#include "metrics/memory_tracker.h"

namespace gminer {

struct ClusterState {
  // Tasks created minus tasks dead, cluster-wide. The job completes when all
  // workers finished seeding and this reaches zero — tasks are independent,
  // so no other in-flight state can produce new work.
  std::atomic<int64_t> live_tasks{0};

  // Workers that have finished GenerateSeeds().
  std::atomic<int> workers_seeded{0};

  // Set by the master on budget violation; workers drop remaining work.
  std::atomic<bool> cancelled{false};
  std::atomic<int> status{static_cast<int>(JobStatus::kOk)};

  MemoryTracker memory;

  void Cancel(JobStatus reason) {
    int expected = static_cast<int>(JobStatus::kOk);
    status.compare_exchange_strong(expected, static_cast<int>(reason));
    cancelled.store(true, std::memory_order_release);
  }

  JobStatus final_status() const { return static_cast<JobStatus>(status.load()); }
};

}  // namespace gminer

#endif  // GMINER_CORE_CLUSTER_STATE_H_
