// Control-plane state shared by all workers and the master of one job run.
// This stands in for the cluster-wide invariants a real deployment maintains
// through its control messages: the global count of live tasks (termination
// detection for the independent-task model), cancellation, and the job-wide
// memory tracker.
#ifndef GMINER_CORE_CLUSTER_STATE_H_
#define GMINER_CORE_CLUSTER_STATE_H_

#include <atomic>
#include <functional>
#include <memory>

#include "core/job_result.h"
#include "graph/types.h"
#include "metrics/memory_tracker.h"

namespace gminer {

struct ClusterState {
  // Tasks created minus tasks dead, cluster-wide. The job completes when all
  // workers finished seeding and this reaches zero — tasks are independent,
  // so no other in-flight state can produce new work.
  std::atomic<int64_t> live_tasks{0};

  // Workers that have finished GenerateSeeds().
  std::atomic<int> workers_seeded{0};

  // Set by the master on budget violation; workers drop remaining work.
  std::atomic<bool> cancelled{false};
  std::atomic<int> status{static_cast<int>(JobStatus::kOk)};

  MemoryTracker memory;

  // Failover routing: pulls for vertices owned by worker w are sent to
  // Redirect(w). Identity until the master reassigns a dead worker's
  // ownership to its adopter. Uninitialized (standalone worker/master tests)
  // behaves as identity.
  void InitRedirect(int num_workers) {
    redirect_size_ = num_workers;
    redirect_ = std::make_unique<std::atomic<WorkerId>[]>(static_cast<size_t>(num_workers));
    killed_ = std::make_unique<std::atomic<bool>[]>(static_cast<size_t>(num_workers));
    for (int w = 0; w < num_workers; ++w) {
      redirect_[w].store(w, std::memory_order_relaxed);
      killed_[w].store(false, std::memory_order_relaxed);
    }
  }

  // Kill visibility for the master's fast-path failure detection: the kill
  // handler marks the worker the instant it is fenced, so the master need not
  // wait out the heartbeat window for injector- or timer-triggered kills.
  void MarkKilled(WorkerId w) {
    if (killed_ != nullptr && w >= 0 && w < redirect_size_) {
      killed_[w].store(true, std::memory_order_release);
    }
  }
  bool WasKilled(WorkerId w) const {
    return killed_ != nullptr && w >= 0 && w < redirect_size_ &&
           killed_[w].load(std::memory_order_acquire);
  }

  // Deaths observed (by the kill handler) but not yet recovered (kAdoptDone).
  // JobComplete must see zero here: when a worker dies, its residual tasks
  // are reaped out of live_tasks before the master has issued the adoption,
  // so live_tasks alone can transiently read "all work done" mid-failover.
  std::atomic<int> pending_failovers{0};

  WorkerId Redirect(WorkerId w) const {
    if (redirect_ == nullptr || w < 0 || w >= redirect_size_) {
      return w;
    }
    // Follow chains (an adopter that itself died), bounded by the table size.
    for (int hop = 0; hop < redirect_size_; ++hop) {
      const WorkerId next = redirect_[w].load(std::memory_order_acquire);
      if (next == w) {
        return w;
      }
      w = next;
    }
    return w;
  }

  void SetRedirect(WorkerId dead, WorkerId adopter) {
    if (redirect_ != nullptr && dead >= 0 && dead < redirect_size_) {
      redirect_[dead].store(adopter, std::memory_order_release);
    }
  }

  // Installed by the deployment (Cluster::Run): fences the endpoint in the
  // network, halts the worker's pipeline, and reaps its residual task
  // accounting. Invoked by the fault injector's kill trigger and by the
  // master's failure detector; must be idempotent.
  std::function<void(WorkerId)> kill_worker;

  void Cancel(JobStatus reason) {
    int expected = static_cast<int>(JobStatus::kOk);
    status.compare_exchange_strong(expected, static_cast<int>(reason));
    cancelled.store(true, std::memory_order_release);
  }

  JobStatus final_status() const { return static_cast<JobStatus>(status.load()); }

 private:
  std::unique_ptr<std::atomic<WorkerId>[]> redirect_;
  std::unique_ptr<std::atomic<bool>[]> killed_;
  int redirect_size_ = 0;
};

}  // namespace gminer

#endif  // GMINER_CORE_CLUSTER_STATE_H_
