#include "core/worker.h"

#include <algorithm>
#include <chrono>
#include <filesystem>

#include "common/logging.h"
#include "common/timer.h"
#include "storage/spill_file.h"

namespace gminer {

namespace {

// Minimum gap between consecutive steal requests from an idle worker, so an
// unlucky worker does not flood the master while the cluster drains.
constexpr int64_t kStealRequestGapNs = 2'000'000;

// Retriever poll interval while the task store is empty.
constexpr auto kIdlePoll = std::chrono::microseconds(200);

}  // namespace

// The UpdateContext handed to Update(): resolves candidates against the local
// vertex table first, then the RCV cache. Remote candidates are guaranteed
// resident because the retriever only admits a task once its pulls completed
// and holds cache references until the round finishes.
class WorkerUpdateContext : public UpdateContext {
 public:
  WorkerUpdateContext(Worker* worker, Rng rng) : worker_(worker), rng_(std::move(rng)) {}

  const VertexRecord* GetVertex(VertexId v) override {
    const VertexRecord* local = worker_->FindVertex(v);
    if (local != nullptr) {
      return local;
    }
    return worker_->cache_.Get(v);
  }

  bool IsLocal(VertexId v) const override { return worker_->VertexIsLocal(v); }

  void Spawn(std::unique_ptr<TaskBase> task) override {
    worker_->state_->live_tasks.fetch_add(1, std::memory_order_relaxed);
    worker_->local_tasks_.fetch_add(1, std::memory_order_relaxed);
    worker_->counters_->tasks_created.fetch_add(1, std::memory_order_relaxed);
    if (TraceEnabled()) {
      task->trace_id = NextTraceTaskId();
      TraceInstant(TraceEventType::kTaskCreated, task->trace_id);
    }
    worker_->PrepareInactive(*task);
    worker_->AccountTask(*task);
    worker_->BufferInactive(std::move(task));
  }

  void Output(const std::string& line) override {
    MutexLock lock(worker_->output_mutex_);
    worker_->outputs_.push_back(line);
  }

  void* aggregator() override { return worker_->aggregator_.get(); }

  bool cancelled() const override {
    return worker_->state_->cancelled.load(std::memory_order_acquire) ||
           worker_->ShuttingDown();
  }

  WorkerId worker_id() const override { return worker_->id_; }
  int num_workers() const override { return worker_->config_.num_workers; }
  Rng& rng() override { return rng_; }

 private:
  Worker* worker_;
  Rng rng_;
};

// SeedSink feeding GenerateSeeds() output into the pipeline (and optionally
// into the seed checkpoint file).
class WorkerSeedSink : public SeedSink {
 public:
  explicit WorkerSeedSink(Worker* worker) : worker_(worker) {}

  void Emit(std::unique_ptr<TaskBase> task) override {
    worker_->state_->live_tasks.fetch_add(1, std::memory_order_relaxed);
    worker_->local_tasks_.fetch_add(1, std::memory_order_relaxed);
    worker_->counters_->tasks_created.fetch_add(1, std::memory_order_relaxed);
    if (TraceEnabled()) {
      task->trace_id = NextTraceTaskId();
      TraceInstant(TraceEventType::kTaskCreated, task->trace_id);
    }
    worker_->PrepareInactive(*task);
    if (!worker_->checkpoint_path_.empty()) {
      OutArchive out;
      task->Serialize(out);
      checkpoint_blobs_.push_back(out.TakeBuffer());
    }
    worker_->AccountTask(*task);
    worker_->BufferInactive(std::move(task));
  }

  void WriteCheckpoint() {
    if (!worker_->checkpoint_path_.empty()) {
      WriteSpillBlock(worker_->checkpoint_path_, checkpoint_blobs_);
    }
  }

 private:
  Worker* worker_;
  std::vector<std::vector<uint8_t>> checkpoint_blobs_;
};

Worker::Worker(WorkerId id, const JobConfig& config, Network* net, ClusterState* state,
               WorkerCounters* counters, JobBase* job)
    : id_(id),
      config_(config),
      net_(net),
      state_(state),
      counters_(counters),
      job_(job),
      master_id_(config.num_workers),
      cache_(config.rcv_cache_capacity, counters, &state->memory),
      rng_(config.seed + 0x1000u + static_cast<uint64_t>(id)) {
  spill_dir_ = MakeSpillDir(config_.spill_dir, id_);
  TaskStore::Options options;
  options.block_capacity = config_.task_block_capacity;
  options.memory_blocks = config_.task_store_memory_blocks;
  options.enable_lsh = config_.enable_lsh;
  options.lsh_num_hashes = config_.lsh_num_hashes;
  options.lsh_bands = config_.lsh_bands;
  options.lsh_seed = config_.seed;  // identical hash family on every worker
  options.spill_dir = spill_dir_;
  store_ = std::make_unique<TaskStore>(
      options, [job] { return job->MakeTask(); }, counters, &state->memory);
  aggregator_ = job_->MakeAggregator();
}

Worker::~Worker() {
  store_.reset();
  RemoveSpillDir(spill_dir_);
  int64_t adopted_bytes = 0;
  {
    // All pipeline threads are joined by now, but the annotation contract
    // (adopted_bytes_ is GUARDED_BY adopted_mutex_) holds everywhere — the
    // uncontended lock is cheaper than a suppression.
    MutexLock lock(adopted_mutex_);
    adopted_bytes = adopted_bytes_;
  }
  state_->memory.Sub(table_.byte_size() + adopted_bytes);
}

void Worker::LoadPartition(const Graph& g, std::shared_ptr<const std::vector<WorkerId>> owner) {
  owner_ = std::move(owner);
  graph_ = &g;
  table_.LoadPartition(g, *owner_, id_);
  state_->memory.Add(table_.byte_size());
}

void Worker::Start(const std::vector<std::vector<uint8_t>>* seed_blobs) {
  running_.store(true, std::memory_order_release);
  if (registry_ != nullptr) {
    // Link the existing lock-free counters (zero hot-path cost) and expose
    // the pipeline's live depths as callback gauges, sampled at Collect().
    RegisterWorkerCounters(*registry_, *counters_);
    registry_->LinkGauge("pull.in_flight", [this] {
      MutexLock lock(pull_mutex_);
      return static_cast<int64_t>(pending_pulls_.size());
    });
    registry_->LinkGauge("store.depth",
                         [this] { return static_cast<int64_t>(store_->ApproxSize()); });
    registry_->LinkGauge("store.in_memory",
                         [this] { return static_cast<int64_t>(store_->InMemorySize()); });
    registry_->LinkGauge("cache.resident",
                         [this] { return static_cast<int64_t>(cache_.size()); });
    registry_->LinkGauge("queue.ready",
                         [this] { return static_cast<int64_t>(cpq_.Size()); });
    registry_->LinkGauge("task.local",
                         [this] { return local_tasks_.load(std::memory_order_relaxed); });
    registry_->LinkGauge("task.in_pipeline",
                         [this] { return in_pipeline_.load(std::memory_order_relaxed); });
    metrics_dropped_ = registry_->GetCounter("metrics.dropped");
    metrics_snapshot_bytes_ = registry_->GetHistogram("metrics.snapshot_bytes");
  }
  PullCoalescerOptions copts;
  copts.enabled = PullBatchingEnabled(config_.enable_pull_batching);
  copts.batch_bytes = config_.pull_batch_bytes;
  copts.flush_us = config_.pull_flush_us;
  copts.queue_bytes = config_.pull_queue_bytes;
  coalescer_ = std::make_unique<PullCoalescer>(
      id_, net_->num_endpoints(), copts, net_, counters_,
      [this](WorkerId /*to*/, uint64_t rid, const std::vector<VertexId>& ids) {
        OnPullBatch(rid, ids);
      },
      tracer_);
  listener_thread_ = std::thread([this] { ListenerLoop(); });
  retriever_thread_ = std::thread([this] { RetrieverLoop(); });
  reporter_thread_ = std::thread([this] { ReporterLoop(); });
  compute_threads_.reserve(static_cast<size_t>(config_.threads_per_worker));
  for (int i = 0; i < config_.threads_per_worker; ++i) {
    // Fork each compute thread's Rng here on the spawning thread: Fork()
    // advances the parent engine, so forking lazily inside ComputeLoop would
    // race the sibling threads (and made the per-thread streams depend on
    // startup order).
    compute_threads_.emplace_back(
        [this, i, rng = rng_.Fork()]() mutable { ComputeLoop(i, std::move(rng)); });
  }
  seeder_thread_ = std::thread([this, seed_blobs] { SeedLoop(seed_blobs); });
}

void Worker::Join() {
  if (seeder_thread_.joinable()) {
    seeder_thread_.join();
  }
  if (listener_thread_.joinable()) {
    listener_thread_.join();
  }
  if (retriever_thread_.joinable()) {
    retriever_thread_.join();
  }
  for (auto& t : compute_threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
  if (reporter_thread_.joinable()) {
    reporter_thread_.join();
  }
}

void Worker::Kill() {
  if (killed_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  GM_LOG_WARN << "worker " << id_ << ": killed";
  running_.store(false, std::memory_order_release);
  cache_.Shutdown();
  cpq_.Close();
  if (coalescer_ != nullptr) {
    // Close (drain + refuse further enqueues) without joining the flusher:
    // the kill trigger can fire from the flusher's own send path. The
    // destructor joins.
    coalescer_->Close();
  }
  // The listener exits once the (fenced) mailbox is closed and drained; the
  // seeder runs to completion with its sends dropped by the network fence.
}

int64_t Worker::ReapAccounting() {
  const int64_t residual = local_tasks_.exchange(0, std::memory_order_acq_rel);
  if (residual > 0) {
    state_->live_tasks.fetch_sub(residual, std::memory_order_relaxed);
  }
  {
    MutexLock lock(output_mutex_);
    outputs_.clear();  // partial outputs die with the node; the adopter re-runs
  }
  return residual;
}

std::vector<std::string> Worker::TakeOutputs() {
  MutexLock lock(output_mutex_);
  return std::move(outputs_);
}

void Worker::AccountTask(TaskBase& task) {
  task.accounted_bytes = task.ByteSize();
  state_->memory.Add(task.accounted_bytes);
}

void Worker::UnaccountTask(TaskBase& task) {
  state_->memory.Sub(task.accounted_bytes);
  task.accounted_bytes = 0;
}

const VertexRecord* Worker::FindVertex(VertexId v) {
  const VertexRecord* record = table_.Find(v);
  if (record != nullptr || !has_adopted_.load(std::memory_order_acquire)) {
    return record;
  }
  MutexLock lock(adopted_mutex_);
  return adopted_table_.Find(v);
}

void Worker::PrepareInactive(TaskBase& task) {
  std::vector<VertexId> to_pull;
  for (const VertexId v : task.candidates()) {
    if (!VertexIsLocal(v)) {
      to_pull.push_back(v);
    }
  }
  std::sort(to_pull.begin(), to_pull.end());
  to_pull.erase(std::unique(to_pull.begin(), to_pull.end()), to_pull.end());
  task.set_to_pull(std::move(to_pull));
}

void Worker::SeedLoop(const std::vector<std::vector<uint8_t>>* seed_blobs) {
  TraceThreadScope trace_scope(tracer_, id_, "seeder");
  if (seed_blobs != nullptr) {
    for (const auto& blob : *seed_blobs) {
      InArchive in(blob.data(), blob.size());
      std::unique_ptr<TaskBase> task = job_->MakeTask();
      task->Deserialize(in);
      state_->live_tasks.fetch_add(1, std::memory_order_relaxed);
      local_tasks_.fetch_add(1, std::memory_order_relaxed);
      counters_->tasks_created.fetch_add(1, std::memory_order_relaxed);
      if (TraceEnabled()) {
        task->trace_id = NextTraceTaskId();
        TraceInstant(TraceEventType::kTaskCreated, task->trace_id);
      }
      PrepareInactive(*task);  // recompute remoteness for this worker
      AccountTask(*task);
      BufferInactive(std::move(task));
    }
  } else {
    WorkerSeedSink sink(this);
    job_->GenerateSeeds(table_, sink);
    sink.WriteCheckpoint();
  }
  FlushBuffer(/*force=*/true);
  seeding_done_.store(true, std::memory_order_release);
  state_->workers_seeded.fetch_add(1, std::memory_order_relaxed);
  TraceInstant(TraceEventType::kSeedingDone);
  net_->Send(id_, master_id_, MessageType::kSeedDone, {});
}

void Worker::BufferInactive(std::unique_ptr<TaskBase> task) {
  // Refresh the memory accounting: the subgraph may have grown this round.
  state_->memory.Sub(task->accounted_bytes);
  task->accounted_bytes = task->ByteSize();
  state_->memory.Add(task->accounted_bytes);
  bool flush = false;
  {
    MutexLock lock(buffer_mutex_);
    task_buffer_.push_back(std::move(task));
    flush = task_buffer_.size() >= config_.task_buffer_batch;
  }
  if (flush) {
    FlushBuffer(/*force=*/false);
  }
}

bool Worker::FlushBuffer(bool force) {
  std::vector<std::unique_ptr<TaskBase>> batch;
  {
    MutexLock lock(buffer_mutex_);
    if (task_buffer_.empty() || (!force && task_buffer_.size() < config_.task_buffer_batch)) {
      return false;
    }
    batch = std::move(task_buffer_);
    task_buffer_.clear();
  }
  store_->InsertBatch(std::move(batch));
  return true;
}

void Worker::RetrieverLoop() {
  TraceThreadScope trace_scope(tracer_, id_, "retriever");
  while (!ShuttingDown()) {
    if (!cache_.WaitBelowCapacity()) {
      return;  // cache shut down => job over
    }
    // Bounded pipeline: inactive tasks accumulate in the task store (where
    // they are spillable and stealable) rather than flooding the CMQ/CPQ.
    if (in_pipeline_.load(std::memory_order_relaxed) >=
        static_cast<int64_t>(config_.pipeline_depth)) {
      std::this_thread::sleep_for(kIdlePoll);
      continue;
    }
    std::unique_ptr<TaskBase> task = store_->TryPop();
    if (task == nullptr) {
      FlushBuffer(/*force=*/true);
      task = store_->TryPop();
    }
    if (task == nullptr) {
      // Going idle: no further admissions will top up the pull buffers, so
      // push anything half-batched to the wire now instead of waiting out
      // the deadline flush.
      coalescer_->FlushAll();
      MaybeRequestSteal();
      std::this_thread::sleep_for(kIdlePoll);
      continue;
    }
    AdmitTask(std::move(task));
  }
}

void Worker::AdmitTask(std::unique_ptr<TaskBase> task) {
  in_pipeline_.fetch_add(1, std::memory_order_relaxed);
  auto entry = std::make_shared<PendingTask>();
  // owner → vertices for every first-time pull this task triggers. Handed to
  // the coalescer after the lock drops; it owns rids and the wire send.
  std::unordered_map<WorkerId, std::vector<VertexId>> by_owner;
  bool ready = false;
  const int64_t deadline =
      MonotonicNanos() + static_cast<int64_t>(config_.pull_timeout_ms) * 1'000'000;
  {
    MutexLock lock(pull_mutex_);
    for (const VertexId v : task->to_pull()) {
      entry->cache_refs.push_back(v);
      if (cache_.AddRefIfPresent(v)) {
        continue;  // hit: reference taken, nothing to pull
      }
      auto [it, inserted] = pending_pulls_.try_emplace(v);
      it->second.waiters.push_back(entry);
      ++entry->pending;
      if (inserted) {
        it->second.owner = (*owner_)[v];
        it->second.deadline_ns = deadline;
        by_owner[it->second.owner].push_back(v);
        counters_->cache_misses.fetch_add(1, std::memory_order_relaxed);
        TraceInstant(TraceEventType::kCacheMiss, static_cast<uint64_t>(v));
      } else {
        // In-flight dedup: the vertex is already on the wire for an earlier
        // task, so this task subscribes to the outstanding pull instead of
        // re-requesting. Also a hit for cache-efficiency purposes.
        counters_->dedup_hits.fetch_add(1, std::memory_order_relaxed);
        counters_->cache_hits.fetch_add(1, std::memory_order_relaxed);
        TraceInstant(TraceEventType::kCacheHit, static_cast<uint64_t>(v));
      }
    }
    if (entry->pending == 0) {
      ready = true;
    } else {
      entry->task = std::move(task);
      entry->admit_ns = TraceNowNs();
      ++pending_task_count_;
    }
  }
  if (ready) {
    task->trace_enqueue_ns = TraceNowNs();
    cpq_.Push(RunnableTask{std::move(task), std::move(entry->cache_refs)});
    return;
  }
  for (auto& [target, ids] : by_owner) {
    counters_->pull_requests.fetch_add(static_cast<int64_t>(ids.size()),
                                       std::memory_order_relaxed);
    coalescer_->Enqueue(state_->Redirect(target), std::move(ids));
  }
}

void Worker::OnPullBatch(uint64_t rid, const std::vector<VertexId>& ids) {
  MutexLock lock(pull_mutex_);
  outstanding_batches_.emplace(
      rid, OutstandingBatch{MonotonicNanos(), static_cast<uint32_t>(ids.size())});
}

void Worker::CheckPullRetries() {
  const int64_t now = MonotonicNanos();
  const int64_t timeout_ns = static_cast<int64_t>(config_.pull_timeout_ms) * 1'000'000;
  // owner → vertices to retry. Everything traced below is captured here,
  // under the lock — no unlocked `attempts` reads.
  std::unordered_map<WorkerId, std::vector<VertexId>> resend;
  bool exhausted = false;
  {
    MutexLock lock(pull_mutex_);
    for (auto& [v, pull] : pending_pulls_) {
      if (pull.deadline_ns > now) {
        continue;
      }
      if (pull.attempts >= config_.max_pull_retries) {
        exhausted = true;
        break;
      }
      ++pull.attempts;
      // Exponential backoff, capped at 8x the base timeout.
      const int64_t backoff = std::min<int64_t>(int64_t{1} << pull.attempts, 8);
      pull.deadline_ns = now + timeout_ns * backoff;
      resend[pull.owner].push_back(v);
    }
    // A dropped request never produces a response, so its batch entry would
    // outlive every per-vertex retry; prune entries past any retry window.
    for (auto it = outstanding_batches_.begin(); it != outstanding_batches_.end();) {
      if (now - it->second.sent_ns > timeout_ns * 16) {
        it = outstanding_batches_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (exhausted) {
    GM_LOG_ERROR << "worker " << id_ << ": pull exhausted " << config_.max_pull_retries
                 << " retries, cancelling job";
    state_->Cancel(JobStatus::kNetworkError);
    return;
  }
  for (auto& [target, ids] : resend) {
    counters_->pull_retries.fetch_add(1, std::memory_order_relaxed);
    TraceInstant(TraceEventType::kPullRetry, static_cast<uint64_t>(target),
                 static_cast<int32_t>(ids.size()));
    // Re-route through the redirect table (the owner may have died and its
    // partition moved to an adopter) and flush immediately: a retry has
    // already waited a full timeout, it must not also wait out a batch.
    coalescer_->Enqueue(state_->Redirect(target), std::move(ids), /*urgent=*/true);
  }
}

void Worker::HandlePullRequest(WorkerId from, InArchive in) {
  const uint64_t rid = in.Read<uint64_t>();
  const std::vector<VertexId> ids = in.ReadVector<VertexId>();
  // Flat response, serialized straight into the send buffer in one pass:
  // [rid][count][length-prefixed block per record]. The count is patched in
  // at the end because transient misses are skipped as they are discovered.
  OutArchive out;
  out.Write<uint64_t>(rid);
  const size_t count_at = out.ReserveU64();
  uint64_t found = 0;
  for (const VertexId v : ids) {
    const VertexRecord* record = FindVertex(v);
    if (record != nullptr) {
      record->WriteFlat(out);
      ++found;
    }
    // else: transient miss — e.g. a redirected pull raced the adoption of the
    // dead owner's partition. Serve what is here; the requester's per-vertex
    // retry loop re-fetches the remainder.
  }
  out.PatchU64(count_at, found);
  net_->Send(id_, from, MessageType::kPullResponse, out.TakeBuffer());
}

void Worker::HandlePullResponse(InArchive in) {
  const uint64_t rid = in.Read<uint64_t>();
  const uint64_t count = in.Read<uint64_t>();
  std::vector<std::shared_ptr<PendingTask>> ready;
  {
    MutexLock lock(pull_mutex_);
    auto batch = outstanding_batches_.find(rid);
    if (batch == outstanding_batches_.end()) {
      // A duplicated or retried-then-answered-twice response. The records it
      // carries are processed idempotently below: a vertex that already
      // arrived has no pending_pulls_ entry, so nothing is re-sent for it.
      counters_->duplicate_pull_responses.fetch_add(1, std::memory_order_relaxed);
    } else {
      TraceSpan(TraceEventType::kPullRoundTrip, rid, batch->second.sent_ns,
                static_cast<int32_t>(batch->second.size));
      outstanding_batches_.erase(batch);
    }
    for (uint64_t i = 0; i < count; ++i) {
      VertexRecord record = VertexRecord::ReadFlat(in);
      counters_->pull_responses.fetch_add(1, std::memory_order_relaxed);
      auto it = pending_pulls_.find(record.id);
      if (it == pending_pulls_.end()) {
        // Duplicate record; keep it cached with no references.
        cache_.Insert(std::move(record), 0);
        continue;
      }
      // Arrival settles the vertex no matter which batch answered — the
      // retry sweep only ever re-sends vertices still in this table.
      std::vector<std::shared_ptr<PendingTask>> waiters = std::move(it->second.waiters);
      pending_pulls_.erase(it);
      cache_.Insert(std::move(record), static_cast<int>(waiters.size()));
      for (auto& waiter : waiters) {
        if (--waiter->pending == 0) {
          ready.push_back(std::move(waiter));
          --pending_task_count_;
        }
      }
    }
  }
  for (auto& waiter : ready) {
    TraceSpan(TraceEventType::kTaskPullWait, waiter->task->trace_id, waiter->admit_ns);
    waiter->task->trace_enqueue_ns = TraceNowNs();
    cpq_.Push(RunnableTask{std::move(waiter->task), std::move(waiter->cache_refs)});
  }
}

void Worker::HandleAdoptTasks(InArchive in) {
  const WorkerId dead = in.Read<WorkerId>();
  const std::string path = in.ReadString();
  const auto ack = [this, dead](uint64_t adopted) {
    OutArchive out;
    out.Write<WorkerId>(dead);
    out.Write<uint64_t>(adopted);
    net_->Send(id_, master_id_, MessageType::kAdoptDone, out.TakeBuffer());
  };
  if (adopted_workers_.contains(dead)) {
    ack(0);  // duplicate command (master retry after a lost ack): re-acknowledge
    return;
  }
  GM_LOG_WARN << "worker " << id_ << ": adopting dead worker " << dead;
  WallTimer timer;
  const int64_t adopt_begin = TraceNowNs();
  // 1. Take over the dead worker's partition so redirected pulls resolve here.
  {
    MutexLock lock(adopted_mutex_);
    adopted_table_.AdoptPartition(*graph_, *owner_, dead);
    const int64_t bytes = adopted_table_.byte_size();
    state_->memory.Add(bytes - adopted_bytes_);
    adopted_bytes_ = bytes;
  }
  has_adopted_.store(true, std::memory_order_release);
  state_->SetRedirect(dead, id_);
  // 2. Re-run its checkpointed seed tasks. The checkpoint is read from a
  //    scratch copy so the original survives for a possible second failover.
  const std::string scratch = path + ".adopt" + std::to_string(id_);
  std::error_code ec;
  std::filesystem::copy_file(path, scratch,
                             std::filesystem::copy_options::overwrite_existing, ec);
  std::vector<std::vector<uint8_t>> blobs;
  std::string error = ec ? "cannot copy checkpoint: " + ec.message() : "";
  if (error.empty() && !TryReadSpillBlock(scratch, &blobs, nullptr, &error)) {
    std::filesystem::remove(scratch, ec);
  }
  if (!error.empty()) {
    GM_LOG_ERROR << "worker " << id_ << ": adoption of worker " << dead
                 << " failed: " << error;
    state_->Cancel(JobStatus::kCheckpointError);
    // A failed adoption still spent recovery time; close the span so the
    // trace shows the stall instead of a gap (arg 0 = no tasks recovered).
    TraceSpan(TraceEventType::kAdoption, static_cast<uint64_t>(dead), adopt_begin, 0);
    ack(0);
    return;
  }
  std::vector<std::unique_ptr<TaskBase>> tasks;
  tasks.reserve(blobs.size());
  for (const auto& blob : blobs) {
    InArchive task_in(blob.data(), blob.size());
    std::unique_ptr<TaskBase> task = job_->MakeTask();
    task->Deserialize(task_in);
    if (TraceEnabled()) {
      task->trace_id = NextTraceTaskId();  // recovered tasks get fresh spans
    }
    PrepareInactive(*task);  // remoteness differs on the adopting worker
    AccountTask(*task);
    tasks.push_back(std::move(task));
  }
  const int64_t n = static_cast<int64_t>(tasks.size());
  state_->live_tasks.fetch_add(n, std::memory_order_relaxed);
  local_tasks_.fetch_add(n, std::memory_order_relaxed);
  counters_->tasks_created.fetch_add(n, std::memory_order_relaxed);
  counters_->tasks_adopted.fetch_add(n, std::memory_order_relaxed);
  counters_->failovers.fetch_add(1, std::memory_order_relaxed);
  store_->InsertBatch(std::move(tasks));
  adopted_workers_.insert(dead);
  counters_->recovery_wall_ns.fetch_add(timer.ElapsedNanos(), std::memory_order_relaxed);
  TraceSpan(TraceEventType::kAdoption, static_cast<uint64_t>(dead), adopt_begin,
            static_cast<int32_t>(n));
  ack(static_cast<uint64_t>(n));
}

void Worker::ComputeLoop(int thread_index, Rng rng) {
  TraceThreadScope trace_scope(tracer_, id_, "compute-" + std::to_string(thread_index));
  WorkerUpdateContext ctx(this, std::move(rng));
  while (true) {
    std::optional<RunnableTask> item = cpq_.Pop();
    if (!item.has_value()) {
      return;
    }
    RunnableTask rt = std::move(*item);
    if (rt.task->trace_enqueue_ns != 0) {
      TraceSpan(TraceEventType::kTaskReadyWait, rt.task->trace_id, rt.task->trace_enqueue_ns);
      rt.task->trace_enqueue_ns = 0;
    }
    while (true) {
      if (ctx.cancelled()) {
        rt.task->MarkDead();
      } else {
        ThreadCpuTimer timer;
        const int64_t trace_begin = TraceNowNs();
        rt.task->Update(ctx);
        TraceSpan(TraceEventType::kTaskCompute, rt.task->trace_id, trace_begin,
                  rt.task->round());
        counters_->compute_busy_ns.fetch_add(timer.ElapsedNanos(), std::memory_order_relaxed);
        counters_->update_rounds.fetch_add(1, std::memory_order_relaxed);
      }
      for (const VertexId v : rt.cache_refs) {
        cache_.Release(v);
      }
      rt.cache_refs.clear();
      if (rt.task->dead()) {
        in_pipeline_.fetch_sub(1, std::memory_order_relaxed);
        FinishTask(std::move(rt.task));
        break;
      }
      rt.task->advance_round();
      PrepareInactive(*rt.task);
      if (!rt.task->to_pull().empty()) {
        // Remote candidates required: back to the task store via the buffer.
        in_pipeline_.fetch_sub(1, std::memory_order_relaxed);
        BufferInactive(std::move(rt.task));
        break;
      }
      // All candidates local: the task stays active and runs its next round
      // immediately (§4.2: no status change, no barrier).
    }
  }
}

void Worker::FinishTask(std::unique_ptr<TaskBase> task) {
  TraceInstant(TraceEventType::kTaskCompleted, task->trace_id);
  UnaccountTask(*task);
  local_tasks_.fetch_sub(1, std::memory_order_relaxed);
  counters_->tasks_completed.fetch_add(1, std::memory_order_relaxed);
  state_->live_tasks.fetch_sub(1, std::memory_order_relaxed);
}

void Worker::MaybeRequestSteal() {
  if (!config_.enable_stealing || !seeding_done_.load(std::memory_order_acquire)) {
    return;
  }
  if (steal_pending_.load(std::memory_order_acquire)) {
    return;
  }
  if (local_tasks_.load(std::memory_order_relaxed) > 0 ||
      state_->live_tasks.load(std::memory_order_relaxed) == 0) {
    return;
  }
  static thread_local int64_t last_request_ns = 0;
  const int64_t now = MonotonicNanos();
  if (now - last_request_ns < kStealRequestGapNs) {
    return;
  }
  last_request_ns = now;
  steal_pending_.store(true, std::memory_order_release);
  net_->Send(id_, master_id_, MessageType::kStealRequest, {});
}

void Worker::HandleMigrateCommand(InArchive in) {
  const WorkerId dest = in.Read<WorkerId>();
  const int32_t num = in.Read<int32_t>();
  const auto eligible = [this](const TaskBase& t) {
    return t.MigrationCost() < config_.steal_cost_threshold &&
           t.LocalRate() < config_.steal_local_rate_threshold;
  };
  std::vector<std::unique_ptr<TaskBase>> stolen = store_->StealBatch(
      static_cast<size_t>(num), eligible, config_.steal_ranked_selection);
  if (stolen.empty()) {
    net_->Send(id_, dest, MessageType::kNoTask, {});
    return;
  }
  OutArchive out;
  out.Write<uint64_t>(stolen.size());
  for (auto& task : stolen) {
    task->Serialize(out);
    UnaccountTask(*task);
  }
  local_tasks_.fetch_sub(static_cast<int64_t>(stolen.size()), std::memory_order_relaxed);
  counters_->tasks_stolen_out.fetch_add(static_cast<int64_t>(stolen.size()),
                                        std::memory_order_relaxed);
  TraceInstant(TraceEventType::kTaskStolenOut, 0, static_cast<int32_t>(stolen.size()));
  net_->Send(id_, dest, MessageType::kMigrateTasks, out.TakeBuffer());
}

void Worker::HandleMigrateTasks(InArchive in) {
  const uint64_t count = in.Read<uint64_t>();
  std::vector<std::unique_ptr<TaskBase>> tasks;
  tasks.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::unique_ptr<TaskBase> task = job_->MakeTask();
    task->Deserialize(in);
    if (TraceEnabled()) {
      task->trace_id = NextTraceTaskId();  // lifecycle spans track residency
    }
    PrepareInactive(*task);  // remoteness differs on the new home worker
    AccountTask(*task);
    tasks.push_back(std::move(task));
  }
  local_tasks_.fetch_add(static_cast<int64_t>(count), std::memory_order_relaxed);
  counters_->tasks_stolen_in.fetch_add(static_cast<int64_t>(count), std::memory_order_relaxed);
  TraceInstant(TraceEventType::kTaskStolenIn, 0, static_cast<int32_t>(count));
  store_->InsertBatch(std::move(tasks));
  steal_pending_.store(false, std::memory_order_release);
}

void Worker::ReporterLoop() {
  TraceThreadScope trace_scope(tracer_, id_, "reporter");
  int64_t last_agg_ns = 0;
  int64_t last_metrics_ns = 0;
  while (!ShuttingDown()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(config_.progress_interval_ms));
    if (ShuttingDown()) {
      break;
    }
    CheckPullRetries();
    OutArchive progress;
    progress.Write<uint64_t>(store_->ApproxSize());
    progress.Write<uint64_t>(cpq_.Size());
    progress.Write<int64_t>(local_tasks_.load(std::memory_order_relaxed));
    // Seeding status piggybacks on every report: a kSeedDone lost to a fault
    // (e.g. a blackout window) heals on the next progress tick.
    progress.Write<uint8_t>(seeding_done_.load(std::memory_order_acquire) ? 1 : 0);
    net_->Send(id_, master_id_, MessageType::kProgressReport, progress.TakeBuffer());

    const int64_t now = MonotonicNanos();
    if (registry_ != nullptr &&
        now - last_metrics_ns >= config_.metrics_interval_ms * 1'000'000) {
      last_metrics_ns = now;
      // Absolute cumulative snapshot piggybacked on the heartbeat path: a
      // drop or duplicate on the simulated network is harmless, the master
      // just keeps the freshest captured_at_ns per worker.
      MetricsSnapshot snap = registry_->Collect();
      const int dropped = snap.TrimToBudget(config_.metrics_max_frame_bytes);
      if (dropped > 0) {
        metrics_dropped_->Add(dropped);
      }
      metrics_snapshot_bytes_->Observe(static_cast<int64_t>(snap.EncodedBytes()));
      OutArchive report;
      snap.Serialize(report);
      net_->Send(id_, master_id_, MessageType::kMetricsReport, report.TakeBuffer());
    }
    if (aggregator_ != nullptr &&
        now - last_agg_ns >= config_.aggregator_interval_ms * 1'000'000) {
      last_agg_ns = now;
      OutArchive partial;
      partial.Write<uint8_t>(0);  // not final
      aggregator_->SerializePartial(partial);
      net_->Send(id_, master_id_, MessageType::kAggPartial, partial.TakeBuffer());
    }
  }
}

void Worker::ListenerLoop() {
  TraceThreadScope trace_scope(tracer_, id_, "listener");
  while (true) {
    std::optional<NetMessage> msg = net_->Receive(id_);
    if (!msg.has_value()) {
      return;
    }
    switch (msg->type) {
      case MessageType::kPullRequest:
        HandlePullRequest(msg->from, InArchive(std::move(msg->payload)));
        break;
      case MessageType::kPullResponse:
        HandlePullResponse(InArchive(std::move(msg->payload)));
        break;
      case MessageType::kMigrateCommand:
        HandleMigrateCommand(InArchive(std::move(msg->payload)));
        break;
      case MessageType::kMigrateTasks:
        HandleMigrateTasks(InArchive(std::move(msg->payload)));
        break;
      case MessageType::kNoTask:
        steal_pending_.store(false, std::memory_order_release);
        break;
      case MessageType::kAdoptTasks:
        HandleAdoptTasks(InArchive(std::move(msg->payload)));
        break;
      case MessageType::kAggGlobal:
        if (aggregator_ != nullptr) {
          InArchive in(std::move(msg->payload));
          aggregator_->ApplyGlobal(in);
        }
        break;
      case MessageType::kShutdown: {
        running_.store(false, std::memory_order_release);
        cache_.Shutdown();
        cpq_.Close();
        coalescer_->Close();
        OutArchive final_report;
        final_report.Write<uint8_t>(1);  // final
        if (aggregator_ != nullptr) {
          aggregator_->SerializePartial(final_report);
        }
        net_->Send(id_, master_id_, MessageType::kAggPartial, final_report.TakeBuffer());
        // Keep listening: if this ack is lost (e.g. to a blackout window) the
        // master re-sends kShutdown, and each copy gets a fresh ack. The loop
        // exits when the deployment closes the network.
        break;
      }
      default:
        GM_LOG_WARN << "worker " << id_ << ": unexpected message type "
                    << static_cast<int>(msg->type);
        break;
    }
  }
}

}  // namespace gminer
