#include "core/worker.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/timer.h"
#include "storage/spill_file.h"

namespace gminer {

namespace {

// Minimum gap between consecutive steal requests from an idle worker, so an
// unlucky worker does not flood the master while the cluster drains.
constexpr int64_t kStealRequestGapNs = 2'000'000;

// Retriever poll interval while the task store is empty.
constexpr auto kIdlePoll = std::chrono::microseconds(200);

}  // namespace

// The UpdateContext handed to Update(): resolves candidates against the local
// vertex table first, then the RCV cache. Remote candidates are guaranteed
// resident because the retriever only admits a task once its pulls completed
// and holds cache references until the round finishes.
class WorkerUpdateContext : public UpdateContext {
 public:
  WorkerUpdateContext(Worker* worker, Rng rng) : worker_(worker), rng_(std::move(rng)) {}

  const VertexRecord* GetVertex(VertexId v) override {
    const VertexRecord* local = worker_->table_.Find(v);
    if (local != nullptr) {
      return local;
    }
    return worker_->cache_.Get(v);
  }

  bool IsLocal(VertexId v) const override { return worker_->table_.Contains(v); }

  void Spawn(std::unique_ptr<TaskBase> task) override {
    worker_->state_->live_tasks.fetch_add(1, std::memory_order_relaxed);
    worker_->local_tasks_.fetch_add(1, std::memory_order_relaxed);
    worker_->counters_->tasks_created.fetch_add(1, std::memory_order_relaxed);
    worker_->PrepareInactive(*task);
    worker_->AccountTask(*task);
    worker_->BufferInactive(std::move(task));
  }

  void Output(const std::string& line) override {
    std::lock_guard<std::mutex> lock(worker_->output_mutex_);
    worker_->outputs_.push_back(line);
  }

  void* aggregator() override { return worker_->aggregator_.get(); }

  bool cancelled() const override {
    return worker_->state_->cancelled.load(std::memory_order_acquire) ||
           worker_->ShuttingDown();
  }

  WorkerId worker_id() const override { return worker_->id_; }
  int num_workers() const override { return worker_->config_.num_workers; }
  Rng& rng() override { return rng_; }

 private:
  Worker* worker_;
  Rng rng_;
};

// SeedSink feeding GenerateSeeds() output into the pipeline (and optionally
// into the seed checkpoint file).
class WorkerSeedSink : public SeedSink {
 public:
  explicit WorkerSeedSink(Worker* worker) : worker_(worker) {}

  void Emit(std::unique_ptr<TaskBase> task) override {
    worker_->state_->live_tasks.fetch_add(1, std::memory_order_relaxed);
    worker_->local_tasks_.fetch_add(1, std::memory_order_relaxed);
    worker_->counters_->tasks_created.fetch_add(1, std::memory_order_relaxed);
    worker_->PrepareInactive(*task);
    if (!worker_->checkpoint_path_.empty()) {
      OutArchive out;
      task->Serialize(out);
      checkpoint_blobs_.push_back(out.TakeBuffer());
    }
    worker_->AccountTask(*task);
    worker_->BufferInactive(std::move(task));
  }

  void WriteCheckpoint() {
    if (!worker_->checkpoint_path_.empty()) {
      WriteSpillBlock(worker_->checkpoint_path_, checkpoint_blobs_);
    }
  }

 private:
  Worker* worker_;
  std::vector<std::vector<uint8_t>> checkpoint_blobs_;
};

Worker::Worker(WorkerId id, const JobConfig& config, Network* net, ClusterState* state,
               WorkerCounters* counters, JobBase* job)
    : id_(id),
      config_(config),
      net_(net),
      state_(state),
      counters_(counters),
      job_(job),
      master_id_(config.num_workers),
      cache_(config.rcv_cache_capacity, counters, &state->memory),
      rng_(config.seed + 0x1000u + static_cast<uint64_t>(id)) {
  spill_dir_ = MakeSpillDir(config_.spill_dir, id_);
  TaskStore::Options options;
  options.block_capacity = config_.task_block_capacity;
  options.memory_blocks = config_.task_store_memory_blocks;
  options.enable_lsh = config_.enable_lsh;
  options.lsh_num_hashes = config_.lsh_num_hashes;
  options.lsh_bands = config_.lsh_bands;
  options.lsh_seed = config_.seed;  // identical hash family on every worker
  options.spill_dir = spill_dir_;
  store_ = std::make_unique<TaskStore>(
      options, [job] { return job->MakeTask(); }, counters, &state->memory);
  aggregator_ = job_->MakeAggregator();
}

Worker::~Worker() {
  store_.reset();
  RemoveSpillDir(spill_dir_);
  state_->memory.Sub(table_.byte_size());
}

void Worker::LoadPartition(const Graph& g, std::shared_ptr<const std::vector<WorkerId>> owner) {
  owner_ = std::move(owner);
  table_.LoadPartition(g, *owner_, id_);
  state_->memory.Add(table_.byte_size());
}

void Worker::Start(const std::vector<std::vector<uint8_t>>* seed_blobs) {
  running_.store(true, std::memory_order_release);
  listener_thread_ = std::thread([this] { ListenerLoop(); });
  retriever_thread_ = std::thread([this] { RetrieverLoop(); });
  reporter_thread_ = std::thread([this] { ReporterLoop(); });
  compute_threads_.reserve(static_cast<size_t>(config_.threads_per_worker));
  for (int i = 0; i < config_.threads_per_worker; ++i) {
    compute_threads_.emplace_back([this, i] { ComputeLoop(i); });
  }
  seeder_thread_ = std::thread([this, seed_blobs] { SeedLoop(seed_blobs); });
}

void Worker::Join() {
  if (seeder_thread_.joinable()) {
    seeder_thread_.join();
  }
  if (listener_thread_.joinable()) {
    listener_thread_.join();
  }
  if (retriever_thread_.joinable()) {
    retriever_thread_.join();
  }
  for (auto& t : compute_threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
  if (reporter_thread_.joinable()) {
    reporter_thread_.join();
  }
}

std::vector<std::string> Worker::TakeOutputs() {
  std::lock_guard<std::mutex> lock(output_mutex_);
  return std::move(outputs_);
}

void Worker::AccountTask(TaskBase& task) {
  task.accounted_bytes = task.ByteSize();
  state_->memory.Add(task.accounted_bytes);
}

void Worker::UnaccountTask(TaskBase& task) {
  state_->memory.Sub(task.accounted_bytes);
  task.accounted_bytes = 0;
}

void Worker::PrepareInactive(TaskBase& task) {
  std::vector<VertexId> to_pull;
  for (const VertexId v : task.candidates()) {
    if (!table_.Contains(v)) {
      to_pull.push_back(v);
    }
  }
  std::sort(to_pull.begin(), to_pull.end());
  to_pull.erase(std::unique(to_pull.begin(), to_pull.end()), to_pull.end());
  task.set_to_pull(std::move(to_pull));
}

void Worker::SeedLoop(const std::vector<std::vector<uint8_t>>* seed_blobs) {
  if (seed_blobs != nullptr) {
    for (const auto& blob : *seed_blobs) {
      InArchive in(blob.data(), blob.size());
      std::unique_ptr<TaskBase> task = job_->MakeTask();
      task->Deserialize(in);
      state_->live_tasks.fetch_add(1, std::memory_order_relaxed);
      local_tasks_.fetch_add(1, std::memory_order_relaxed);
      counters_->tasks_created.fetch_add(1, std::memory_order_relaxed);
      PrepareInactive(*task);  // recompute remoteness for this worker
      AccountTask(*task);
      BufferInactive(std::move(task));
    }
  } else {
    WorkerSeedSink sink(this);
    job_->GenerateSeeds(table_, sink);
    sink.WriteCheckpoint();
  }
  FlushBuffer(/*force=*/true);
  seeding_done_.store(true, std::memory_order_release);
  state_->workers_seeded.fetch_add(1, std::memory_order_relaxed);
  net_->Send(id_, master_id_, MessageType::kSeedDone, {});
}

void Worker::BufferInactive(std::unique_ptr<TaskBase> task) {
  // Refresh the memory accounting: the subgraph may have grown this round.
  state_->memory.Sub(task->accounted_bytes);
  task->accounted_bytes = task->ByteSize();
  state_->memory.Add(task->accounted_bytes);
  bool flush = false;
  {
    std::lock_guard<std::mutex> lock(buffer_mutex_);
    task_buffer_.push_back(std::move(task));
    flush = task_buffer_.size() >= config_.task_buffer_batch;
  }
  if (flush) {
    FlushBuffer(/*force=*/false);
  }
}

bool Worker::FlushBuffer(bool force) {
  std::vector<std::unique_ptr<TaskBase>> batch;
  {
    std::lock_guard<std::mutex> lock(buffer_mutex_);
    if (task_buffer_.empty() || (!force && task_buffer_.size() < config_.task_buffer_batch)) {
      return false;
    }
    batch = std::move(task_buffer_);
    task_buffer_.clear();
  }
  store_->InsertBatch(std::move(batch));
  return true;
}

void Worker::RetrieverLoop() {
  while (!ShuttingDown()) {
    if (!cache_.WaitBelowCapacity()) {
      return;  // cache shut down => job over
    }
    // Bounded pipeline: inactive tasks accumulate in the task store (where
    // they are spillable and stealable) rather than flooding the CMQ/CPQ.
    if (in_pipeline_.load(std::memory_order_relaxed) >=
        static_cast<int64_t>(config_.pipeline_depth)) {
      std::this_thread::sleep_for(kIdlePoll);
      continue;
    }
    std::unique_ptr<TaskBase> task = store_->TryPop();
    if (task == nullptr) {
      FlushBuffer(/*force=*/true);
      task = store_->TryPop();
    }
    if (task == nullptr) {
      MaybeRequestSteal();
      std::this_thread::sleep_for(kIdlePoll);
      continue;
    }
    AdmitTask(std::move(task));
  }
}

void Worker::AdmitTask(std::unique_ptr<TaskBase> task) {
  in_pipeline_.fetch_add(1, std::memory_order_relaxed);
  auto entry = std::make_shared<PendingTask>();
  std::unordered_map<WorkerId, std::vector<VertexId>> requests;
  bool ready = false;
  {
    std::lock_guard<std::mutex> lock(pull_mutex_);
    for (const VertexId v : task->to_pull()) {
      entry->cache_refs.push_back(v);
      if (cache_.AddRefIfPresent(v)) {
        continue;  // hit: reference taken, nothing to pull
      }
      PendingVertex& pending = pending_pulls_[v];
      pending.waiters.push_back(entry);
      ++entry->pending;
      if (!pending.requested) {
        pending.requested = true;
        requests[(*owner_)[v]].push_back(v);
        counters_->cache_misses.fetch_add(1, std::memory_order_relaxed);
      } else {
        // Pull already in flight (a nearby task in the priority queue needs
        // the same vertex): coalesced, no extra network fetch — a hit for
        // cache-efficiency purposes.
        counters_->cache_hits.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (entry->pending == 0) {
      ready = true;
    } else {
      entry->task = std::move(task);
      ++pending_task_count_;
    }
  }
  if (ready) {
    cpq_.Push(RunnableTask{std::move(task), std::move(entry->cache_refs)});
    return;
  }
  for (auto& [target, ids] : requests) {
    counters_->pull_requests.fetch_add(static_cast<int64_t>(ids.size()),
                                       std::memory_order_relaxed);
    OutArchive out;
    out.WriteVector(ids);
    net_->Send(id_, target, MessageType::kPullRequest, out.TakeBuffer());
  }
}

void Worker::HandlePullRequest(WorkerId from, InArchive in) {
  const std::vector<VertexId> ids = in.ReadVector<VertexId>();
  OutArchive out;
  out.Write<uint64_t>(ids.size());
  for (const VertexId v : ids) {
    const VertexRecord* record = table_.Find(v);
    GM_CHECK(record != nullptr) << "pull request for non-local vertex " << v << " at worker "
                                << id_;
    record->Serialize(out);
  }
  net_->Send(id_, from, MessageType::kPullResponse, out.TakeBuffer());
}

void Worker::HandlePullResponse(InArchive in) {
  const uint64_t count = in.Read<uint64_t>();
  std::vector<std::shared_ptr<PendingTask>> ready;
  {
    std::lock_guard<std::mutex> lock(pull_mutex_);
    for (uint64_t i = 0; i < count; ++i) {
      VertexRecord record = VertexRecord::Deserialize(in);
      counters_->pull_responses.fetch_add(1, std::memory_order_relaxed);
      auto it = pending_pulls_.find(record.id);
      if (it == pending_pulls_.end()) {
        // Duplicate response; keep the record cached with no references.
        cache_.Insert(std::move(record), 0);
        continue;
      }
      std::vector<std::shared_ptr<PendingTask>> waiters = std::move(it->second.waiters);
      pending_pulls_.erase(it);
      cache_.Insert(std::move(record), static_cast<int>(waiters.size()));
      for (auto& waiter : waiters) {
        if (--waiter->pending == 0) {
          ready.push_back(std::move(waiter));
          --pending_task_count_;
        }
      }
    }
  }
  for (auto& waiter : ready) {
    cpq_.Push(RunnableTask{std::move(waiter->task), std::move(waiter->cache_refs)});
  }
}

void Worker::ComputeLoop(int thread_index) {
  WorkerUpdateContext ctx(this, rng_.Fork());
  (void)thread_index;
  while (true) {
    std::optional<RunnableTask> item = cpq_.Pop();
    if (!item.has_value()) {
      return;
    }
    RunnableTask rt = std::move(*item);
    while (true) {
      if (ctx.cancelled()) {
        rt.task->MarkDead();
      } else {
        ThreadCpuTimer timer;
        rt.task->Update(ctx);
        counters_->compute_busy_ns.fetch_add(timer.ElapsedNanos(), std::memory_order_relaxed);
        counters_->update_rounds.fetch_add(1, std::memory_order_relaxed);
      }
      for (const VertexId v : rt.cache_refs) {
        cache_.Release(v);
      }
      rt.cache_refs.clear();
      if (rt.task->dead()) {
        in_pipeline_.fetch_sub(1, std::memory_order_relaxed);
        FinishTask(std::move(rt.task));
        break;
      }
      rt.task->advance_round();
      PrepareInactive(*rt.task);
      if (!rt.task->to_pull().empty()) {
        // Remote candidates required: back to the task store via the buffer.
        in_pipeline_.fetch_sub(1, std::memory_order_relaxed);
        BufferInactive(std::move(rt.task));
        break;
      }
      // All candidates local: the task stays active and runs its next round
      // immediately (§4.2: no status change, no barrier).
    }
  }
}

void Worker::FinishTask(std::unique_ptr<TaskBase> task) {
  UnaccountTask(*task);
  local_tasks_.fetch_sub(1, std::memory_order_relaxed);
  counters_->tasks_completed.fetch_add(1, std::memory_order_relaxed);
  state_->live_tasks.fetch_sub(1, std::memory_order_relaxed);
}

void Worker::MaybeRequestSteal() {
  if (!config_.enable_stealing || !seeding_done_.load(std::memory_order_acquire)) {
    return;
  }
  if (steal_pending_.load(std::memory_order_acquire)) {
    return;
  }
  if (local_tasks_.load(std::memory_order_relaxed) > 0 ||
      state_->live_tasks.load(std::memory_order_relaxed) == 0) {
    return;
  }
  static thread_local int64_t last_request_ns = 0;
  const int64_t now = MonotonicNanos();
  if (now - last_request_ns < kStealRequestGapNs) {
    return;
  }
  last_request_ns = now;
  steal_pending_.store(true, std::memory_order_release);
  net_->Send(id_, master_id_, MessageType::kStealRequest, {});
}

void Worker::HandleMigrateCommand(InArchive in) {
  const WorkerId dest = in.Read<WorkerId>();
  const int32_t num = in.Read<int32_t>();
  const auto eligible = [this](const TaskBase& t) {
    return t.MigrationCost() < config_.steal_cost_threshold &&
           t.LocalRate() < config_.steal_local_rate_threshold;
  };
  std::vector<std::unique_ptr<TaskBase>> stolen = store_->StealBatch(
      static_cast<size_t>(num), eligible, config_.steal_ranked_selection);
  if (stolen.empty()) {
    net_->Send(id_, dest, MessageType::kNoTask, {});
    return;
  }
  OutArchive out;
  out.Write<uint64_t>(stolen.size());
  for (auto& task : stolen) {
    task->Serialize(out);
    UnaccountTask(*task);
  }
  local_tasks_.fetch_sub(static_cast<int64_t>(stolen.size()), std::memory_order_relaxed);
  counters_->tasks_stolen_out.fetch_add(static_cast<int64_t>(stolen.size()),
                                        std::memory_order_relaxed);
  net_->Send(id_, dest, MessageType::kMigrateTasks, out.TakeBuffer());
}

void Worker::HandleMigrateTasks(InArchive in) {
  const uint64_t count = in.Read<uint64_t>();
  std::vector<std::unique_ptr<TaskBase>> tasks;
  tasks.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::unique_ptr<TaskBase> task = job_->MakeTask();
    task->Deserialize(in);
    PrepareInactive(*task);  // remoteness differs on the new home worker
    AccountTask(*task);
    tasks.push_back(std::move(task));
  }
  local_tasks_.fetch_add(static_cast<int64_t>(count), std::memory_order_relaxed);
  counters_->tasks_stolen_in.fetch_add(static_cast<int64_t>(count), std::memory_order_relaxed);
  store_->InsertBatch(std::move(tasks));
  steal_pending_.store(false, std::memory_order_release);
}

void Worker::ReporterLoop() {
  int64_t last_agg_ns = 0;
  while (!ShuttingDown()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(config_.progress_interval_ms));
    if (ShuttingDown()) {
      break;
    }
    OutArchive progress;
    progress.Write<uint64_t>(store_->ApproxSize());
    progress.Write<uint64_t>(cpq_.Size());
    progress.Write<int64_t>(local_tasks_.load(std::memory_order_relaxed));
    net_->Send(id_, master_id_, MessageType::kProgressReport, progress.TakeBuffer());

    const int64_t now = MonotonicNanos();
    if (aggregator_ != nullptr &&
        now - last_agg_ns >= config_.aggregator_interval_ms * 1'000'000) {
      last_agg_ns = now;
      OutArchive partial;
      partial.Write<uint8_t>(0);  // not final
      aggregator_->SerializePartial(partial);
      net_->Send(id_, master_id_, MessageType::kAggPartial, partial.TakeBuffer());
    }
  }
}

void Worker::ListenerLoop() {
  while (true) {
    std::optional<NetMessage> msg = net_->Receive(id_);
    if (!msg.has_value()) {
      return;
    }
    switch (msg->type) {
      case MessageType::kPullRequest:
        HandlePullRequest(msg->from, InArchive(std::move(msg->payload)));
        break;
      case MessageType::kPullResponse:
        HandlePullResponse(InArchive(std::move(msg->payload)));
        break;
      case MessageType::kMigrateCommand:
        HandleMigrateCommand(InArchive(std::move(msg->payload)));
        break;
      case MessageType::kMigrateTasks:
        HandleMigrateTasks(InArchive(std::move(msg->payload)));
        break;
      case MessageType::kNoTask:
        steal_pending_.store(false, std::memory_order_release);
        break;
      case MessageType::kAggGlobal:
        if (aggregator_ != nullptr) {
          InArchive in(std::move(msg->payload));
          aggregator_->ApplyGlobal(in);
        }
        break;
      case MessageType::kShutdown: {
        running_.store(false, std::memory_order_release);
        cache_.Shutdown();
        cpq_.Close();
        OutArchive final_report;
        final_report.Write<uint8_t>(1);  // final
        if (aggregator_ != nullptr) {
          aggregator_->SerializePartial(final_report);
        }
        net_->Send(id_, master_id_, MessageType::kAggPartial, final_report.TakeBuffer());
        return;
      }
      default:
        GM_LOG_WARN << "worker " << id_ << ": unexpected message type "
                    << static_cast<int>(msg->type);
        break;
    }
  }
}

}  // namespace gminer
