// Outcome of one job run: elapsed time, resource metrics, result outputs and
// the final global aggregate — everything the paper's tables report per cell.
#ifndef GMINER_CORE_JOB_RESULT_H_
#define GMINER_CORE_JOB_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/counters.h"
#include "metrics/registry.h"
#include "metrics/sampler.h"
#include "metrics/trace_stats.h"

namespace gminer {

enum class JobStatus {
  kOk = 0,
  kOutOfMemory = 1,     // the "x" entries of Tables 1 and 3
  kTimeout = 2,         // the "-" (>24h) entries, scaled to the configured budget
  kConfigError = 3,     // invalid JobConfig / RunOptions, rejected before deployment
  kCheckpointError = 4, // corrupted or truncated checkpoint during recovery
  kNetworkError = 5,    // a pull exhausted its retries (partition never healed)
  kWorkerLost = 6,      // worker died with no checkpoint to recover from
};

inline const char* JobStatusName(JobStatus s) {
  switch (s) {
    case JobStatus::kOk:
      return "ok";
    case JobStatus::kOutOfMemory:
      return "OOM";
    case JobStatus::kTimeout:
      return "TIMEOUT";
    case JobStatus::kConfigError:
      return "CONFIG_ERROR";
    case JobStatus::kCheckpointError:
      return "CHECKPOINT_ERROR";
    case JobStatus::kNetworkError:
      return "NETWORK_ERROR";
    case JobStatus::kWorkerLost:
      return "WORKER_LOST";
  }
  return "?";
}

struct JobResult {
  JobStatus status = JobStatus::kOk;
  double elapsed_seconds = 0.0;    // job execution (excludes partitioning)
  double partition_seconds = 0.0;  // graph partitioning phase
  CountersSnapshot totals;
  std::vector<CountersSnapshot> per_worker;
  int64_t peak_memory_bytes = 0;
  double avg_cpu_utilization = 0.0;  // busy core time / available core time
  std::vector<UtilizationSample> utilization;  // when sampling was enabled
  std::vector<std::string> outputs;
  std::vector<uint8_t> final_aggregate;  // serialized global aggregator value

  // Live metrics plane (metrics/registry.h): final absolute snapshot of each
  // worker's registry plus the merged cluster view (includes the master
  // registry's memory/utilization gauges). Empty when the plane was off.
  bool metrics_enabled = false;
  std::vector<MetricsSnapshot> final_metrics;  // indexed by worker
  MetricsSnapshot cluster_metrics;

  // Tracing (RunOptions::enable_tracing; common/trace.h).
  bool trace_enabled = false;
  int64_t trace_events = 0;          // events captured across all rings
  int64_t trace_events_dropped = 0;  // events lost to ring overflow
  std::string trace_file;            // Chrome trace path, when one was written
  std::vector<StageLatency> stage_latencies;  // per-stage p50/p95/p99
};

}  // namespace gminer

#endif  // GMINER_CORE_JOB_RESULT_H_
