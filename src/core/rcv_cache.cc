#include "core/rcv_cache.h"

#include "common/logging.h"
#include "common/trace.h"

namespace gminer {

RcvCache::RcvCache(size_t capacity, WorkerCounters* counters, MemoryTracker* memory)
    : capacity_(capacity), counters_(counters), memory_(memory) {
  GM_CHECK(capacity_ > 0);
}

RcvCache::~RcvCache() {
  if (memory_ != nullptr) {
    MutexLock lock(mutex_);
    for (const auto& [v, entry] : entries_) {
      memory_->Sub(entry.record.ByteSize());
    }
  }
}

bool RcvCache::AddRefIfPresent(VertexId v) {
  MutexLock lock(mutex_);
  auto it = entries_.find(v);
  if (it == entries_.end()) {
    // Miss/coalesce classification happens in the caller (the candidate
    // retriever), which knows whether a pull for v is already in flight.
    return false;
  }
  Entry& entry = it->second;
  if (entry.in_reclaim) {
    reclaim_.erase(entry.reclaim_pos);
    entry.in_reclaim = false;
  }
  ++entry.refs;
  if (counters_ != nullptr) {
    counters_->cache_hits.fetch_add(1, std::memory_order_relaxed);
  }
  TraceInstant(TraceEventType::kCacheHit, static_cast<uint64_t>(v));
  return true;
}

void RcvCache::Insert(VertexRecord record, int initial_refs) {
  GM_CHECK(initial_refs >= 0);
  MutexLock lock(mutex_);
  auto it = entries_.find(record.id);
  if (it != entries_.end()) {
    // Duplicate response (e.g. a re-pull raced with a migration); just add
    // the references to the existing entry.
    Entry& entry = it->second;
    if (entry.in_reclaim && initial_refs > 0) {
      reclaim_.erase(entry.reclaim_pos);
      entry.in_reclaim = false;
    }
    entry.refs += initial_refs;
    return;
  }
  if (entries_.size() >= capacity_) {
    EvictLocked(entries_.size() - capacity_ + 1);
  }
  const VertexId id = record.id;
  Entry entry;
  if (memory_ != nullptr) {
    memory_->Add(record.ByteSize());
  }
  entry.record = std::move(record);
  entry.refs = initial_refs;
  auto [pos, inserted] = entries_.emplace(id, std::move(entry));
  GM_CHECK(inserted);
  if (initial_refs == 0) {
    reclaim_.push_back(id);
    pos->second.reclaim_pos = std::prev(reclaim_.end());
    pos->second.in_reclaim = true;
  }
}

const VertexRecord* RcvCache::Get(VertexId v) const {
  MutexLock lock(mutex_);
  auto it = entries_.find(v);
  return it == entries_.end() ? nullptr : &it->second.record;
}

void RcvCache::Release(VertexId v) {
  bool freed = false;
  {
    MutexLock lock(mutex_);
    auto it = entries_.find(v);
    GM_CHECK(it != entries_.end()) << "Release of non-resident vertex " << v;
    Entry& entry = it->second;
    GM_CHECK(entry.refs > 0) << "double release of vertex " << v;
    if (--entry.refs == 0) {
      // Lazy model: move to the reclaim tail instead of deleting — the vertex
      // may be referenced again by a subsequent task in the pipeline.
      reclaim_.push_back(v);
      entry.reclaim_pos = std::prev(reclaim_.end());
      entry.in_reclaim = true;
      freed = true;
    }
  }
  if (freed) {
    space_cv_.NotifyAll();
  }
}

bool RcvCache::WaitBelowCapacity() {
  MutexLock lock(mutex_);
  while (!shutdown_ && entries_.size() >= capacity_ && reclaim_.empty()) {
    space_cv_.Wait(mutex_);
  }
  return !shutdown_;
}

void RcvCache::Shutdown() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  space_cv_.NotifyAll();
}

size_t RcvCache::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

size_t RcvCache::EvictLocked(size_t want) {
  size_t evicted = 0;
  while (evicted < want && !reclaim_.empty()) {
    const VertexId victim = reclaim_.front();
    reclaim_.pop_front();
    auto it = entries_.find(victim);
    GM_CHECK(it != entries_.end() && it->second.refs == 0);
    if (memory_ != nullptr) {
      memory_->Sub(it->second.record.ByteSize());
    }
    entries_.erase(it);
    ++evicted;
  }
  if (evicted > 0) {
    TraceInstant(TraceEventType::kCacheEvict, 0, static_cast<int32_t>(evicted));
  }
  return evicted;
}

}  // namespace gminer
