#include "core/task_store.h"

#include <algorithm>

#include "common/logging.h"
#include "common/trace.h"
#include "storage/spill_file.h"

namespace gminer {

TaskStore::TaskStore(Options options, TaskFactory factory, WorkerCounters* counters,
                     MemoryTracker* memory)
    : options_(std::move(options)),
      factory_(std::move(factory)),
      counters_(counters),
      memory_(memory),
      hasher_(options_.lsh_num_hashes, options_.lsh_bands, options_.lsh_seed) {
  GM_CHECK(options_.block_capacity > 0);
  GM_CHECK(options_.memory_blocks > 0);
}

TaskStore::~TaskStore() {
  if (memory_ != nullptr) {
    MutexLock lock(mutex_);
    for (const auto& [key, task] : head_) {
      memory_->Sub(task->accounted_bytes);
    }
  }
}

uint64_t TaskStore::KeyFor(const TaskBase& task) {
  if (!options_.enable_lsh) {
    return fifo_sequence_++;
  }
  return hasher_.Key(task.to_pull());
}

void TaskStore::InsertBatch(std::vector<std::unique_ptr<TaskBase>> tasks) {
  if (tasks.empty()) {
    return;
  }
  std::vector<std::pair<uint64_t, std::unique_ptr<TaskBase>>> keyed;
  keyed.reserve(tasks.size());
  const int64_t enqueue_ns = TraceNowNs();
  MutexLock lock(mutex_);
  for (auto& task : tasks) {
    task->trace_enqueue_ns = enqueue_ns;
    keyed.emplace_back(KeyFor(*task), std::move(task));
  }
  const size_t memory_capacity = options_.block_capacity * options_.memory_blocks;
  if (head_.size() + keyed.size() <= memory_capacity) {
    for (auto& [key, task] : keyed) {
      head_.emplace(key, std::move(task));
    }
    return;
  }
  // Overflow: the batch becomes one (or more) sorted spill blocks; the head
  // block stays in memory untouched.
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  SpillLocked(std::move(keyed));
}

void TaskStore::SpillLocked(std::vector<std::pair<uint64_t, std::unique_ptr<TaskBase>>> batch) {
  size_t begin = 0;
  while (begin < batch.size()) {
    const size_t end = std::min(begin + options_.block_capacity, batch.size());
    SpillBlock block;
    block.min_key = batch[begin].first;
    block.max_key = batch[end - 1].first;
    block.count = end - begin;
    block.path = options_.spill_dir + "/block_" + std::to_string(next_block_id_++) + ".bin";
    std::vector<std::vector<uint8_t>> blobs;
    blobs.reserve(block.count);
    for (size_t i = begin; i < end; ++i) {
      OutArchive out;
      out.Write(batch[i].first);
      batch[i].second->Serialize(out);
      blobs.push_back(out.TakeBuffer());
      if (memory_ != nullptr) {
        memory_->Sub(batch[i].second->accounted_bytes);
        batch[i].second->accounted_bytes = 0;
      }
    }
    const int64_t write_begin = TraceNowNs();
    const int64_t bytes = WriteSpillBlock(block.path, blobs);
    TraceSpan(TraceEventType::kSpillWrite, next_block_id_ - 1, write_begin,
              static_cast<int32_t>(block.count));
    if (counters_ != nullptr) {
      counters_->disk_bytes_written.fetch_add(bytes, std::memory_order_relaxed);
    }
    spilled_count_ += block.count;
    blocks_.push_back(std::move(block));
    begin = end;
  }
}

void TaskStore::LoadBestBlockLocked() {
  if (blocks_.empty()) {
    return;
  }
  auto best = std::min_element(blocks_.begin(), blocks_.end(),
                               [](const SpillBlock& a, const SpillBlock& b) {
                                 return a.min_key < b.min_key;
                               });
  const int64_t read_begin = TraceNowNs();
  int64_t bytes = 0;
  std::vector<std::vector<uint8_t>> blobs = ReadSpillBlock(best->path, &bytes);
  TraceSpan(TraceEventType::kSpillRead, static_cast<uint64_t>(best->count), read_begin,
            static_cast<int32_t>(best->count));
  if (counters_ != nullptr) {
    counters_->disk_bytes_read.fetch_add(bytes, std::memory_order_relaxed);
  }
  spilled_count_ -= best->count;
  blocks_.erase(best);
  for (auto& blob : blobs) {
    InArchive in(std::move(blob));
    const uint64_t key = in.Read<uint64_t>();
    std::unique_ptr<TaskBase> task = factory_();
    task->Deserialize(in);
    if (memory_ != nullptr) {
      task->accounted_bytes = task->ByteSize();
      memory_->Add(task->accounted_bytes);
    }
    head_.emplace(key, std::move(task));
  }
}

std::unique_ptr<TaskBase> TaskStore::TryPop() {
  MutexLock lock(mutex_);
  if (head_.empty()) {
    LoadBestBlockLocked();
  }
  if (head_.empty()) {
    return nullptr;
  }
  auto it = head_.begin();
  std::unique_ptr<TaskBase> task = std::move(it->second);
  head_.erase(it);
  if (task->trace_enqueue_ns != 0) {
    TraceSpan(TraceEventType::kTaskQueueWait, task->trace_id, task->trace_enqueue_ns);
    task->trace_enqueue_ns = 0;
  }
  return task;
}

std::vector<std::unique_ptr<TaskBase>> TaskStore::StealBatch(
    size_t max_tasks, const std::function<bool(const TaskBase&)>& eligible, bool ranked) {
  std::vector<std::unique_ptr<TaskBase>> stolen;
  MutexLock lock(mutex_);
  if (!ranked) {
    // Threshold-only model (the paper's §6.2): steal from the back (highest
    // keys) — the front is about to be consumed locally and its remote
    // candidates are likely already cached here.
    auto it = head_.end();
    while (it != head_.begin() && stolen.size() < max_tasks) {
      --it;
      if (eligible(*it->second)) {
        stolen.push_back(std::move(it->second));
        it = head_.erase(it);
      }
    }
    return stolen;
  }
  // Improved cost model (§9): among the eligible tasks, migrate those the
  // new home can run most independently (lowest local rate), breaking ties
  // toward the cheapest to ship (lowest migration cost).
  std::vector<std::multimap<uint64_t, std::unique_ptr<TaskBase>>::iterator> eligible_its;
  for (auto it = head_.begin(); it != head_.end(); ++it) {
    if (eligible(*it->second)) {
      eligible_its.push_back(it);
    }
  }
  std::sort(eligible_its.begin(), eligible_its.end(), [](const auto& a, const auto& b) {
    const double lr_a = a->second->LocalRate();
    const double lr_b = b->second->LocalRate();
    if (lr_a != lr_b) {
      return lr_a < lr_b;
    }
    return a->second->MigrationCost() < b->second->MigrationCost();
  });
  if (eligible_its.size() > max_tasks) {
    eligible_its.resize(max_tasks);
  }
  for (auto& it : eligible_its) {
    stolen.push_back(std::move(it->second));
    head_.erase(it);
  }
  return stolen;
}

std::vector<std::vector<uint8_t>> TaskStore::DrainSerialized() {
  MutexLock lock(mutex_);
  std::vector<std::vector<uint8_t>> out;
  while (!blocks_.empty() || !head_.empty()) {
    for (auto& [key, task] : head_) {
      OutArchive archive;
      task->Serialize(archive);
      out.push_back(archive.TakeBuffer());
      if (memory_ != nullptr) {
        memory_->Sub(task->accounted_bytes);
        task->accounted_bytes = 0;
      }
    }
    head_.clear();
    LoadBestBlockLocked();
  }
  return out;
}

size_t TaskStore::ApproxSize() const {
  MutexLock lock(mutex_);
  return head_.size() + spilled_count_;
}

size_t TaskStore::InMemorySize() const {
  MutexLock lock(mutex_);
  return head_.size();
}

}  // namespace gminer
